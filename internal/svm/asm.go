package svm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses handler assembly into a Program. The syntax is
// MIPS-flavoured, one instruction per line:
//
//	; comments run to end of line
//	loop:                    ; labels end with a colon
//	  lb   r4, 0(r2)         ; load byte at r2+0
//	  addi r2, r2, 1
//	  blt  r4, r5, loop      ; branches name labels
//	  emit r4
//	  stop
//
// Registers are r0..r31 (r0 reads as zero; writes to it are discarded).
// Immediates are decimal or 0x-hex.
func Assemble(src string) (*Program, error) {
	type pending struct {
		instr int
		label string
	}
	p := &Program{Labels: make(map[string]int)}
	var fixups []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !validLabel(label) {
				return nil, fmt.Errorf("svm: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := p.Labels[label]; dup {
				return nil, fmt.Errorf("svm: line %d: duplicate label %q", lineNo+1, label)
			}
			p.Labels[label] = len(p.Instrs)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		if len(fields) == 0 {
			continue
		}
		mn := strings.ToLower(fields[0])
		args := fields[1:]
		ins, needLabel, err := parseInstr(mn, args)
		if err != nil {
			return nil, fmt.Errorf("svm: line %d: %v", lineNo+1, err)
		}
		if needLabel != "" {
			fixups = append(fixups, pending{instr: len(p.Instrs), label: needLabel})
		}
		p.Instrs = append(p.Instrs, ins)
	}

	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("svm: empty program")
	}
	// A label with no instruction after it would branch past the end.
	for label, idx := range p.Labels {
		if idx >= len(p.Instrs) {
			return nil, fmt.Errorf("svm: label %q has no instruction", label)
		}
	}
	for _, f := range fixups {
		target, ok := p.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("svm: undefined label %q", f.label)
		}
		p.Instrs[f.instr].Imm = int32(target)
	}
	return p, nil
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if i == 0 && !alpha {
			return false
		}
		if !alpha && !(r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

func parseReg(s string) (uint8, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v > 1<<31-1 || v < -(1<<31) {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(v), nil
}

// parseMem parses "imm(rN)".
func parseMem(s string) (uint8, int32, error) {
	open := strings.IndexByte(s, '(')
	closing := strings.IndexByte(s, ')')
	if open < 0 || closing < open {
		return 0, 0, fmt.Errorf("expected imm(reg), got %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		immStr = "0"
	}
	imm, err := parseImm(immStr)
	if err != nil {
		return 0, 0, err
	}
	reg, err := parseReg(s[open+1 : closing])
	if err != nil {
		return 0, 0, err
	}
	return reg, imm, nil
}

func parseInstr(mn string, args []string) (Instr, string, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mn, n, len(args))
		}
		return nil
	}
	var ins Instr
	switch mn {
	case "add", "sub", "mul", "and", "or", "xor", "slt", "sltu":
		ops := map[string]Op{"add": OpAdd, "sub": OpSub, "mul": OpMul, "and": OpAnd,
			"or": OpOr, "xor": OpXor, "slt": OpSlt, "sltu": OpSltu}
		ins.Op = ops[mn]
		if err := need(3); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
		if ins.Rs, err = parseReg(args[1]); err != nil {
			return ins, "", err
		}
		if ins.Rt, err = parseReg(args[2]); err != nil {
			return ins, "", err
		}
	case "addi", "andi", "ori", "slli", "srli":
		ops := map[string]Op{"addi": OpAddi, "andi": OpAndi, "ori": OpOri,
			"slli": OpSlli, "srli": OpSrli}
		ins.Op = ops[mn]
		if err := need(3); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
		if ins.Rs, err = parseReg(args[1]); err != nil {
			return ins, "", err
		}
		if ins.Imm, err = parseImm(args[2]); err != nil {
			return ins, "", err
		}
	case "lui":
		ins.Op = OpLui
		if err := need(2); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
		if ins.Imm, err = parseImm(args[1]); err != nil {
			return ins, "", err
		}
	case "li":
		// Pseudo-instruction: li rd, imm  ->  addi rd, r0, imm.
		ins.Op = OpAddi
		if err := need(2); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
		if ins.Imm, err = parseImm(args[1]); err != nil {
			return ins, "", err
		}
	case "mv":
		// Pseudo-instruction: mv rd, rs  ->  addi rd, rs, 0.
		ins.Op = OpAddi
		if err := need(2); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
		if ins.Rs, err = parseReg(args[1]); err != nil {
			return ins, "", err
		}
	case "lw", "lb":
		if mn == "lw" {
			ins.Op = OpLw
		} else {
			ins.Op = OpLb
		}
		if err := need(2); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
		if ins.Rs, ins.Imm, err = parseMem(args[1]); err != nil {
			return ins, "", err
		}
	case "sw", "sb":
		if mn == "sw" {
			ins.Op = OpSw
		} else {
			ins.Op = OpSb
		}
		if err := need(2); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rt, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
		if ins.Rs, ins.Imm, err = parseMem(args[1]); err != nil {
			return ins, "", err
		}
	case "beq", "bne", "blt", "bge":
		ops := map[string]Op{"beq": OpBeq, "bne": OpBne, "blt": OpBlt, "bge": OpBge}
		ins.Op = ops[mn]
		if err := need(3); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rs, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
		if ins.Rt, err = parseReg(args[1]); err != nil {
			return ins, "", err
		}
		return ins, args[2], nil
	case "j", "jal":
		if mn == "j" {
			ins.Op = OpJ
		} else {
			ins.Op = OpJal
		}
		if err := need(1); err != nil {
			return ins, "", err
		}
		return ins, args[0], nil
	case "jr":
		ins.Op = OpJr
		if err := need(1); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rs, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
	case "emit":
		ins.Op = OpEmit
		if err := need(1); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rs, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
	case "dealloc":
		ins.Op = OpDealloc
		if err := need(1); err != nil {
			return ins, "", err
		}
		var err error
		if ins.Rs, err = parseReg(args[0]); err != nil {
			return ins, "", err
		}
	case "stop":
		ins.Op = OpStop
		if err := need(0); err != nil {
			return ins, "", err
		}
	default:
		return ins, "", fmt.Errorf("unknown mnemonic %q", mn)
	}
	return ins, "", nil
}
