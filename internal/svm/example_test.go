package svm_test

import (
	"fmt"

	"activesan/internal/svm"
)

// Example assembles and executes a handler program against an in-memory
// stream with the stand-alone SliceEnv — the cmd/swasm dry-run flow.
func Example() {
	prog, err := svm.Assemble(svm.MinMaxSource)
	if err != nil {
		panic(err)
	}
	data := []byte{9, 4, 200, 7}
	env := svm.NewSliceEnv(1<<20, data)
	m := svm.NewMachine(env, prog, map[uint8]uint32{
		1: 1 << 20,
		2: 1<<20 + uint32(len(data)),
	})
	if _, err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("min=%d max=%d\n", env.Out[0], env.Out[1])
	// Output: min=4 max=200
}
