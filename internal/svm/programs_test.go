package svm

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
	"testing/quick"

	"activesan/internal/aswitch"
	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
)

func runLib(t *testing.T, src string, data []byte, init map[uint8]uint32) *SliceEnv {
	t.Helper()
	env := NewSliceEnv(1<<20, data)
	if init == nil {
		init = map[uint8]uint32{}
	}
	if _, ok := init[1]; !ok {
		init[1] = 1 << 20
	}
	if _, ok := init[2]; !ok {
		init[2] = uint32(1<<20 + len(data))
	}
	m := NewMachine(env, MustAssemble(src), init)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestSumWordsProgram(t *testing.T) {
	data := make([]byte, 256)
	var want uint32
	for i := 0; i < len(data)/4; i++ {
		v := uint32(i * 2654435761)
		binary.LittleEndian.PutUint32(data[i*4:], v)
		want += v
	}
	env := runLib(t, SumWordsSource, data, nil)
	if env.Out[0] != want {
		t.Fatalf("sum = %#x, want %#x", env.Out[0], want)
	}
}

func TestMinMaxProgram(t *testing.T) {
	data := []byte{42, 17, 200, 3, 99, 254, 8}
	env := runLib(t, MinMaxSource, data, nil)
	if env.Out[0] != 3 || env.Out[1] != 254 {
		t.Fatalf("min/max = %v, want [3 254]", env.Out)
	}
}

func TestHistogramProgram(t *testing.T) {
	data := make([]byte, 400)
	var want [4]uint32
	for i := range data {
		data[i] = byte(i * 37)
		want[data[i]>>6]++
	}
	env := runLib(t, HistogramSource, data, nil)
	for b := 0; b < 4; b++ {
		if env.Out[b] != want[b] {
			t.Fatalf("bucket %d = %d, want %d (all %v vs %v)", b, env.Out[b], want[b], env.Out, want)
		}
	}
	// The histogram counters live in private memory: the D-cache path must
	// have been exercised.
	if env.Loads == 0 || env.Stores == 0 {
		t.Fatalf("histogram never touched private memory: %d loads, %d stores", env.Loads, env.Stores)
	}
}

func TestSelectProgramLibraryCopy(t *testing.T) {
	const recSize = 8
	data := make([]byte, recSize*100)
	want := uint32(0)
	for i := 0; i < 100; i++ {
		data[i*recSize] = byte(i * 13)
		if data[i*recSize] < 100 {
			want++
		}
	}
	env := runLib(t, SelectSource, data, map[uint8]uint32{5: 100, 6: recSize})
	if env.Out[0] != want {
		t.Fatalf("select = %d, want %d", env.Out[0], want)
	}
}

func TestLibraryProgramsAssemble(t *testing.T) {
	for name, src := range map[string]string{
		"select": SelectSource, "sum": SumWordsSource,
		"minmax": MinMaxSource, "histogram": HistogramSource,
	} {
		if p := MustAssemble(src); len(p.Instrs) == 0 {
			t.Fatalf("%s assembled empty", name)
		}
	}
}

func TestSliceEnvAccounting(t *testing.T) {
	env := runLib(t, SumWordsSource, make([]byte, 64), nil)
	if env.Cycles == 0 || env.Fetches == 0 {
		t.Fatal("no work accounted")
	}
	if env.Cycles != env.Fetches {
		t.Fatalf("cycles %d != fetches %d for single-issue", env.Cycles, env.Fetches)
	}
	if len(env.Deallocs) == 0 {
		t.Fatal("no deallocations recorded")
	}
}

func TestMatchCountProgram(t *testing.T) {
	pattern := []byte("abab")
	corpus := []byte("zababab-abab!xxabababab")
	// Oracle: overlapping occurrences with restart-at-zero after a match
	// (the program resets its state), i.e. non-overlapping count.
	want := uint32(0)
	state := 0
	table := KMPTable(pattern)
	for _, c := range corpus {
		state = int(table[state*256+int(c)])
		if state == len(pattern) {
			want++
			state = 0
		}
	}
	env := NewSliceEnv(1<<20, corpus)
	m := NewMachine(env, MustAssemble(MatchCountSource), map[uint8]uint32{
		1: 1 << 20,
		2: uint32(1<<20 + len(corpus)),
		5: uint32(len(pattern)),
	})
	for i, b := range table {
		m.Poke(int64(i), b)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Out[0] != want {
		t.Fatalf("assembly matcher found %d, want %d", env.Out[0], want)
	}
	if want < 3 {
		t.Fatalf("weak test corpus: only %d matches", want)
	}
}

func TestMatchCountOnRealSwitch(t *testing.T) {
	// End to end with the 1 KB switch D-cache in the loop: the handler
	// builds the machine itself, pokes the host-supplied table into
	// private memory, and scans the disk stream. The table (1 KB for a
	// 4-byte pattern) exactly fills the D-cache.
	pattern := []byte("BEEF")
	const total = 32 * 1024
	data := make([]byte, total)
	for i := range data {
		data[i] = byte('a' + i%23)
	}
	want := uint32(0)
	for i := 0; i+len(pattern) < len(data); i += 997 {
		copy(data[i:], pattern)
		want++
	}

	eng := sim.NewEngine()
	c := cluster.NewIOCluster(eng, cluster.DefaultIOClusterConfig())
	c.Store(0).AddFile(&iodev.File{Name: "t", Size: total, Data: data})
	sw := c.Switch(0)
	table := KMPTable(pattern)
	prog := MustAssemble(MatchCountSource)
	sw.Register(21, "asm-match", func(x *aswitch.Ctx) {
		x.ReleaseArgs()
		env := NewCtxEnv(x, 1<<20, 1<<16)
		m := NewMachine(env, prog, map[uint8]uint32{
			1: 1 << 20, 2: 1<<20 + total, 5: uint32(len(pattern)),
		})
		for i, b := range table {
			m.Poke(int64(i), b)
		}
		if _, err := m.Run(); err != nil {
			t.Errorf("vm: %v", err)
			return
		}
		x.Send(aswitch.SendSpec{Dst: x.Src(), Type: san.Control, Addr: 0x100,
			Size: 8, Flow: 0x7400, Payload: env.Out[0]})
	})
	c.Start()
	var got uint32
	eng.Spawn("app", func(p *sim.Proc) {
		h := c.Host(0)
		h.SendMessage(p, &san.Message{
			Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 21, Addr: 0},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "t", 0, total,
			sw.ID(), 1<<20, san.Data, 0, 0, 0x6800)
		h.WaitRead(p, tok)
		comp := h.RecvFlow(p, sw.ID(), 0x7400)
		got = comp.Payloads[0].(uint32)
	})
	eng.Run()
	defer c.Shutdown()
	if got != want {
		t.Fatalf("switch matcher found %d, want %d", got, want)
	}
	// Table lookups go through the D-cache: the run must have issued real
	// data-cache traffic.
	if st := sw.CPU(0).Timing().Hier().L1D().Stats(); st.Accesses == 0 {
		t.Fatal("no D-cache traffic from the transition table")
	}
}

func TestCRC32Program(t *testing.T) {
	data := []byte("The quick brown fox jumps over the lazy dog")
	env := NewSliceEnv(1<<20, data)
	m := NewMachine(env, MustAssemble(CRC32Source), map[uint8]uint32{
		1: 1 << 20,
		2: uint32(1<<20 + len(data)),
	})
	for i, b := range CRC32Table() {
		m.Poke(int64(i), b)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if want := crc32.ChecksumIEEE(data); env.Out[0] != want {
		t.Fatalf("assembly CRC32 = %#x, want %#x", env.Out[0], want)
	}
}

func TestCRC32ProgramProperty(t *testing.T) {
	f := func(data []byte) bool {
		env := NewSliceEnv(1<<20, data)
		m := NewMachine(env, MustAssemble(CRC32Source), map[uint8]uint32{
			1: 1 << 20,
			2: uint32(1<<20 + len(data)),
		})
		for i, b := range CRC32Table() {
			m.Poke(int64(i), b)
		}
		if _, err := m.Run(); err != nil {
			return false
		}
		return env.Out[0] == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
