package svm

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for name, src := range map[string]string{
		"select": SelectSource, "sum": SumWordsSource,
		"minmax": MinMaxSource, "histogram": HistogramSource,
	} {
		p := MustAssemble(src)
		img, err := EncodeProgram(p)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		q, err := DecodeProgram(img)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(q.Instrs) != len(p.Instrs) {
			t.Fatalf("%s: %d instrs, want %d", name, len(q.Instrs), len(p.Instrs))
		}
		for i := range p.Instrs {
			if q.Instrs[i] != p.Instrs[i] {
				t.Fatalf("%s: instr %d round-tripped to %+v, want %+v",
					name, i, q.Instrs[i], p.Instrs[i])
			}
		}
	}
}

func TestDecodedProgramRunsIdentically(t *testing.T) {
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i * 31)
	}
	run := func(p *Program) []uint32 {
		env := NewSliceEnv(1<<20, data)
		m := NewMachine(env, p, map[uint8]uint32{1: 1 << 20, 2: 1<<20 + 512})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return env.Out
	}
	p := MustAssemble(MinMaxSource)
	img, _ := EncodeProgram(p)
	q, _ := DecodeProgram(img)
	a, b := run(p), run(q)
	if len(a) != len(b) || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("decoded program diverged: %v vs %v", a, b)
	}
}

func TestEncodeInstrProperty(t *testing.T) {
	// Property: any instruction with in-range fields round-trips exactly.
	f := func(op uint8, rd, rs, rt uint8, imm int16) bool {
		ins := Instr{
			Op: Op(op % uint8(OpStop+1)),
			Rd: rd % 32, Rs: rs % 32, Rt: rt % 32,
			Imm: int32(imm % 1024),
		}
		w, err := EncodeInstr(ins)
		if err != nil {
			return false
		}
		got, err := DecodeInstr(w)
		return err == nil && got == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeProgramProperty round-trips whole randomly generated valid
// programs — every opcode, register and in-range immediate mixed across
// programs up to the encodable size — not just the hand-picked library
// sources above. Seeded splitmix64 keeps failures reproducible.
func TestEncodeProgramProperty(t *testing.T) {
	seed := uint64(0x5EED)
	next := func() uint64 {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	trials := 300
	if testing.Short() {
		trials = 100
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + int(next()%512)
		p := &Program{Labels: map[string]int{}}
		for i := 0; i < n; i++ {
			p.Instrs = append(p.Instrs, Instr{
				Op:  Op(next() % uint64(OpStop+1)),
				Rd:  uint8(next() % 32),
				Rs:  uint8(next() % 32),
				Rt:  uint8(next() % 32),
				Imm: int32(next()%2048) - 1024, // the full signed 11-bit range
			})
		}
		img, err := EncodeProgram(p)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		q, err := DecodeProgram(img)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(q.Instrs) != len(p.Instrs) {
			t.Fatalf("trial %d: %d instrs, want %d", trial, len(q.Instrs), len(p.Instrs))
		}
		for i := range p.Instrs {
			if q.Instrs[i] != p.Instrs[i] {
				t.Fatalf("trial %d: instr %d round-tripped to %+v, want %+v",
					trial, i, q.Instrs[i], p.Instrs[i])
			}
		}
	}
}

func TestEncodeRejectsWideImmediates(t *testing.T) {
	if _, err := EncodeInstr(Instr{Op: OpAddi, Imm: 1 << 20}); err == nil {
		t.Fatal("wide immediate encoded")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeProgram([]byte("not an image")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeProgram([]byte{'S', 'V', 'M', '1', 9, 0, 0, 0}); err == nil {
		t.Fatal("truncated image accepted")
	}
	if _, err := DecodeInstr(uint32(OpStop+7) << 26); err == nil {
		t.Fatal("illegal opcode decoded")
	}
}
