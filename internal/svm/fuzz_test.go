package svm

import (
	"strings"
	"testing"
)

// FuzzAssemble feeds arbitrary text to the assembler: it must never panic,
// and anything it accepts must disassemble and re-assemble to the same
// instruction count.
func FuzzAssemble(f *testing.F) {
	f.Add("li r1, 3\nstop")
	f.Add("loop: j loop")
	f.Add("lw r1, 4(r2)\nsw r1, 8(r3)\nstop")
	f.Add("beq r1, r2, done\ndone: stop")
	f.Add("; only a comment")
	f.Add("a: b: c: stop")
	f.Add("addi r1, r0, 0x7fffffff\nstop")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		if len(p.Instrs) == 0 {
			t.Fatal("accepted an empty program")
		}
		// Branch/jump targets must land inside the program or one past it
		// is invalid too: execution bounds-checks, but assembly must have
		// resolved every label to a real instruction index.
		for i, ins := range p.Instrs {
			switch ins.Op {
			case OpBeq, OpBne, OpBlt, OpBge, OpJ, OpJal:
				if ins.Imm < 0 || int(ins.Imm) >= len(p.Instrs) {
					t.Fatalf("instr %d: target %d outside program of %d", i, ins.Imm, len(p.Instrs))
				}
			}
		}
		if !strings.Contains(p.String(), p.Instrs[0].Op.String()) {
			t.Fatal("disassembly lost the first opcode")
		}
	})
}

// FuzzExecute runs accepted programs under a tight instruction budget: the
// machine must terminate with a result or an error, never panic on
// arbitrary (stream-free) programs.
func FuzzExecute(f *testing.F) {
	f.Add("li r1, 5\nloop: addi r1, r1, -1\nbne r1, r0, loop\nstop")
	f.Add("sw r1, 0(r0)\nlw r2, 0(r0)\nstop")
	f.Add("jal fn\nstop\nfn: jr r31")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		// Reject programs that touch the stream (they would panic on
		// stores by design); private memory only.
		env := &fakeEnv{base: 1 << 30, stream: nil}
		m := NewMachine(env, p, nil)
		m.MaxInstrs = 10000
		defer func() {
			if r := recover(); r != nil {
				// Stores to stream addresses panic by contract; anything
				// else is a bug.
				if s, ok := r.(string); !ok || !strings.Contains(s, "stream") {
					t.Fatalf("unexpected panic: %v", r)
				}
			}
		}()
		_, _ = m.Run()
	})
}
