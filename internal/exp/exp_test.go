package exp

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	// The evaluation section has two tables and the figure pairs 3/4, 5/6,
	// 7/8, 9/10, 11/12, 13/14 plus 15, 16 and 17; twolevel, scalesweep,
	// latsweep, hdlsweep, faultsweep and collsweep are this repo's
	// extensions.
	want := []string{"table1", "fig3", "fig5", "fig7", "fig9", "fig11", "fig13",
		"table2", "fig15", "fig16", "fig17", "twolevel", "scalesweep",
		"latsweep", "hdlsweep", "faultsweep", "collsweep"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry order %v, want %v", got, want)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig9"); !ok {
		t.Fatal("fig9 missing")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("fig99 should not exist")
	}
}

func TestEveryExperimentRunsScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry")
	}
	// A heavily scaled pass of the full registry: every experiment must
	// produce a non-empty result without panicking.
	for _, e := range Registry {
		res := e.Run(64)
		if res.ID == "" {
			t.Errorf("%s: empty result id", e.ID)
		}
		if len(res.Runs) == 0 && len(res.Series) == 0 && len(res.Notes) == 0 {
			t.Errorf("%s: result carries no data", e.ID)
		}
		if out := res.Format(); out == "" {
			t.Errorf("%s: empty formatting", e.ID)
		}
	}
}

func TestTable1MatchesPaperSizes(t *testing.T) {
	res := runTable1(1)
	joined := strings.Join(res.Notes, "\n")
	for _, want := range []string{"2202640", "16M x 128M", "1146880", "Big Red Bear", "16M records", "512 B"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("table1 missing %q:\n%s", want, joined)
		}
	}
}

func TestShapesProducedForFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig9")
	}
	e, _ := ByID("fig9")
	res := e.Run(1)
	shapes := Shapes(res)
	if len(shapes) == 0 {
		t.Fatal("no shape summary for fig9")
	}
	if !strings.Contains(shapes[0], "paper") {
		t.Fatalf("shape line lacks paper reference: %q", shapes[0])
	}
}

func TestScaleClampsToFloors(t *testing.T) {
	// Absurd scales must clamp to each experiment's minimum workload, not
	// produce empty runs.
	if testing.Short() {
		t.Skip("runs scaled experiments")
	}
	for _, id := range []string{"fig3", "fig7", "fig13"} {
		e, _ := ByID(id)
		res := e.Run(1 << 30)
		if len(res.Runs) == 0 {
			t.Errorf("%s at huge scale produced no runs", id)
		}
		for _, r := range res.Runs {
			if r.Time <= 0 {
				t.Errorf("%s: run %s has no duration", id, r.Config)
			}
		}
	}
}
