package exp_test

// The golden-result suite pins the simulator's deterministic output: every
// registry entry is re-run (in parallel, through exp.RunAll) at a fixed
// small scale and compared byte-for-byte against testdata/golden/<id>.json,
// which holds the same JSON the `activesim -json` flag writes. A mismatch
// is a calibration regression unless the change was intentional — then
// regenerate with
//
//	go test ./internal/exp -run TestGolden -update
//
// and review the diff of testdata/golden in the commit.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"activesan"
	"activesan/internal/exp"
	"activesan/internal/report"
	"activesan/internal/stats"
)

var update = flag.Bool("update", false, "rewrite testdata/golden from the current simulator output")

// goldenScale fixes the golden problem size: heavily scaled so the whole
// registry runs in seconds, with every workload clamped to its floor and
// every shape still present.
const goldenScale = 64

// goldenWorkers exercises the parallel harness whenever the goldens are
// checked or regenerated.
const goldenWorkers = 4

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

// marshalResult encodes one result exactly as `activesim -json` would.
func marshalResult(t *testing.T, res *stats.Result) []byte {
	t.Helper()
	data, err := activesan.ResultJSON([]*stats.Result{res})
	if err != nil {
		t.Fatalf("marshal %s: %v", res.ID, err)
	}
	return append(data, '\n')
}

// unmarshalResults decodes a golden file's result set.
func unmarshalResults(data []byte) ([]*stats.Result, error) {
	var f struct {
		Results []*stats.Result `json:"results"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return f.Results, nil
}

func TestGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry")
	}
	results := exp.RunAll(goldenScale, goldenWorkers)
	for i, e := range exp.Registry {
		got := marshalResult(t, results[i])
		path := goldenPath(e.ID)
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (%v); generate with `go test ./internal/exp -run TestGolden -update`", e.ID, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: output diverged from %s — calibration regression?\n%s\n(if intentional, regenerate with -update and commit the diff)",
				e.ID, path, goldenDelta(want, got))
		}
	}
}

// goldenDelta renders a mismatch as the sandiff-style per-config delta
// table, far more readable than a raw JSON diff.
func goldenDelta(before, after []byte) string {
	rb, errB := unmarshalResults(before)
	ra, errA := unmarshalResults(after)
	if errB != nil || errA != nil {
		return "(golden not parseable as a result file; compare the JSON directly)"
	}
	return report.Compare(rb, ra)
}

func TestGoldenFilesCoverRegistry(t *testing.T) {
	// Every registry entry has a golden, and no stale golden outlives its
	// experiment.
	want := make(map[string]bool, len(exp.Registry))
	for _, e := range exp.Registry {
		want[e.ID] = true
		if _, err := os.Stat(goldenPath(e.ID)); err != nil {
			t.Errorf("%s: no golden file: %v", e.ID, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		id := ent.Name()[:len(ent.Name())-len(".json")]
		if !want[id] {
			t.Errorf("stale golden %s: no experiment %q in the registry", ent.Name(), id)
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry twice")
	}
	// Two passes at the same scale — one through the parallel harness, one
	// sequential — must agree byte-for-byte, which simultaneously proves
	// per-experiment determinism and the independence of concurrent
	// engines. The registry includes the multi-switch-CPU MD5 case (fig17)
	// and the tree-topology reductions (fig15/fig16).
	first := exp.RunAll(goldenScale, goldenWorkers)
	second := exp.RunAll(goldenScale, 1)
	for i, e := range exp.Registry {
		a := marshalResult(t, first[i])
		b := marshalResult(t, second[i])
		if !bytes.Equal(a, b) {
			t.Errorf("%s: parallel and sequential runs diverge — nondeterministic simulation", e.ID)
		}
	}
}

func TestKeyExperimentsDeterministicQuick(t *testing.T) {
	// A fast always-on determinism pin for the two topologies most at risk
	// from concurrency bugs: fig17 (multiple switch CPUs sharing one
	// switch) and fig15 (a switch tree). Runs each twice back to back.
	for _, id := range []string{"fig15", "fig17"} {
		e, ok := exp.ByID(id)
		if !ok {
			t.Fatalf("%s missing from registry", id)
		}
		a := marshalResult(t, e.Run(256))
		b := marshalResult(t, e.Run(256))
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two identical runs produced different JSON", id)
		}
	}
}

func TestRunAllOrderingAndWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the registry at several worker counts")
	}
	// Whatever the worker count — including more workers than experiments
	// and the NumCPU default (workers < 1) — results come back in registry
	// order with matching IDs.
	for _, workers := range []int{0, len(exp.Registry) + 5} {
		results := exp.RunAll(goldenScale, workers)
		if len(results) != len(exp.Registry) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(exp.Registry))
		}
		for i, e := range exp.Registry {
			if results[i] == nil || results[i].ID != e.ID {
				t.Errorf("workers=%d: slot %d holds %v, want %s", workers, i, results[i], e.ID)
			}
		}
	}
}
