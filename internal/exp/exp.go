// Package exp is the experiment registry: every table and figure of the
// paper's evaluation maps to a runnable experiment that regenerates its
// rows or series. Experiments accept a scale divisor so the full paper
// workloads (up to 16M records) can be shrunk for quick runs; shapes are
// scale-free, and scale 1 reproduces the paper's exact problem sizes.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"activesan/internal/apps/collsweep"
	"activesan/internal/apps/faultsweep"
	"activesan/internal/apps/grep"
	"activesan/internal/apps/hashjoin"
	"activesan/internal/apps/hdlsweep"
	"activesan/internal/apps/latsweep"
	"activesan/internal/apps/md5app"
	"activesan/internal/apps/mpeg"
	"activesan/internal/apps/psort"
	"activesan/internal/apps/reduce"
	"activesan/internal/apps/scalesweep"
	"activesan/internal/apps/sel"
	"activesan/internal/apps/tarapp"
	"activesan/internal/apps/twolevel"
	"activesan/internal/stats"
)

// Experiment is one paper artifact.
type Experiment struct {
	// ID is the registry key ("fig3", "table1", ...).
	ID string
	// Paper names the artifact ("Figure 3 and 4").
	Paper string
	// Title describes what it shows.
	Title string
	// Run executes the experiment at the given scale divisor (1 = the
	// paper's full problem size).
	Run func(scale int64) *stats.Result
}

func clampScale(s int64) int64 {
	if s < 1 {
		return 1
	}
	return s
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{
		ID:    "table1",
		Paper: "Table 1",
		Title: "Applications and problem sizes",
		Run:   runTable1,
	},
	{
		ID:    "fig3",
		Paper: "Figures 3 and 4",
		Title: "MPEG filter: performance and execution-time breakdown",
		Run: func(scale int64) *stats.Result {
			prm := mpeg.DefaultParams()
			prm.FileSize /= clampScale(scale)
			if prm.FileSize < 128*1024 {
				prm.FileSize = 128 * 1024
			}
			return mpeg.RunAll(prm)
		},
	},
	{
		ID:    "fig5",
		Paper: "Figures 5 and 6",
		Title: "HashJoin with bit-vector filter: performance and breakdown",
		Run: func(scale int64) *stats.Result {
			prm := hashjoin.DefaultParams()
			s := clampScale(scale)
			prm.RBytes /= s
			prm.SBytes /= s
			if prm.RBytes < 1<<20 {
				prm.RBytes = 1 << 20
			}
			if prm.SBytes < 4<<20 {
				prm.SBytes = 4 << 20
			}
			return hashjoin.RunAll(prm)
		},
	},
	{
		ID:    "fig7",
		Paper: "Figures 7 and 8",
		Title: "Select: performance and breakdown",
		Run: func(scale int64) *stats.Result {
			prm := sel.DefaultParams()
			prm.TableBytes /= clampScale(scale)
			if prm.TableBytes < 4<<20 {
				prm.TableBytes = 4 << 20
			}
			return sel.RunAll(prm)
		},
	},
	{
		ID:    "fig9",
		Paper: "Figures 9 and 10",
		Title: "Grep: performance and breakdown",
		Run: func(int64) *stats.Result {
			// The paper's file is ~1.1 MB; no scaling needed.
			return grep.RunAll(grep.DefaultParams())
		},
	},
	{
		ID:    "fig11",
		Paper: "Figures 11 and 12",
		Title: "Tar: performance and breakdown",
		Run: func(scale int64) *stats.Result {
			prm := tarapp.DefaultParams()
			s := clampScale(scale)
			if s > 1 && prm.Files > 4 {
				prm.Files = int(int64(prm.Files) / min64(s, 4))
			}
			return tarapp.RunAll(prm)
		},
	},
	{
		ID:    "fig13",
		Paper: "Figures 13 and 14",
		Title: "Parallel sort (distribution phase): performance and breakdown",
		Run: func(scale int64) *stats.Result {
			prm := psort.DefaultParams()
			prm.Records /= clampScale(scale)
			if prm.Records < 32<<10 {
				prm.Records = 32 << 10
			}
			return psort.RunAll(prm)
		},
	},
	{
		ID:    "table2",
		Paper: "Table 2",
		Title: "Collective reduction semantics (correctness demonstration)",
		Run:   runTable2,
	},
	{
		ID:    "fig15",
		Paper: "Figure 15",
		Title: "Collective Reduce-to-one: latency vs node count",
		Run: func(scale int64) *stats.Result {
			return reduce.Sweep(reduce.ToOne, sweepNodes(scale), reduce.DefaultParams())
		},
	},
	{
		ID:    "fig16",
		Paper: "Figure 16",
		Title: "Collective Distributed Reduce: latency vs node count",
		Run: func(scale int64) *stats.Result {
			return reduce.Sweep(reduce.Distributed, sweepNodes(scale), reduce.DefaultParams())
		},
	},
	{
		ID:    "fig17",
		Paper: "Figure 17",
		Title: "MD5 with 1, 2 and 4 switch CPUs",
		Run: func(scale int64) *stats.Result {
			prm := md5app.DefaultParams()
			prm.FileSize /= clampScale(scale)
			if prm.FileSize < 64*1024 {
				prm.FileSize = 64 * 1024
			}
			return md5app.RunAll(prm)
		},
	},
	{
		ID:    "twolevel",
		Paper: "Extension (Section 6)",
		Title: "Two-level active I/O: active disks below active switches",
		Run: func(scale int64) *stats.Result {
			prm := twolevel.DefaultParams()
			prm.TableBytes /= clampScale(scale)
			if prm.TableBytes < 4<<20 {
				prm.TableBytes = 4 << 20
			}
			return twolevel.RunAll(prm)
		},
	},
	{
		ID:    "scalesweep",
		Paper: "Extension (scale-out)",
		Title: "Reduce at scale on k-ary fat trees: active vs passive",
		Run: func(scale int64) *stats.Result {
			prm := scalesweep.DefaultParams()
			if clampScale(scale) > 1 {
				prm.HostCounts = []int{4, 8, 16}
			}
			return scalesweep.RunAll(prm)
		},
	},
	{
		ID:    "latsweep",
		Paper: "Extension (telemetry)",
		Title: "Per-hop latency decomposition: active vs passive reduce",
		Run: func(scale int64) *stats.Result {
			prm := latsweep.DefaultParams()
			if clampScale(scale) > 1 {
				prm.HostCounts = []int{4, 8, 16}
			}
			return latsweep.RunAll(prm)
		},
	},
	{
		ID:    "hdlsweep",
		Paper: "Extension (handler authoring)",
		Title: "HDL handlers: compiled-on-switch vs host interpreter",
		Run: func(scale int64) *stats.Result {
			prm := hdlsweep.DefaultParams()
			prm.StreamBytes /= clampScale(scale)
			if prm.StreamBytes < 16<<10 {
				prm.StreamBytes = 16 << 10
			}
			return hdlsweep.RunAll(prm)
		},
	},
	{
		ID:    "faultsweep",
		Paper: "Extension (reliability)",
		Title: "MPEG filter under injected link loss, plus handler-crash fallback",
		Run: func(scale int64) *stats.Result {
			prm := mpeg.DefaultParams()
			prm.FileSize /= clampScale(scale)
			if prm.FileSize < 128*1024 {
				prm.FileSize = 128 * 1024
			}
			return faultsweep.RunAll(prm)
		},
	},
	{
		ID:    "collsweep",
		Paper: "Extension (in-network collectives)",
		Title: "In-network collectives: allreduce scaling and the aggregation spill cliff",
		Run: func(scale int64) *stats.Result {
			prm := collsweep.DefaultParams()
			if clampScale(scale) > 1 {
				// Keep the 64-host point: it is the acceptance anchor for
				// the active-vs-passive byte reduction.
				prm.HostCounts = []int{4, 16, 64}
				prm.Budgets = []int{2, 8, 32, 64}
			}
			return collsweep.RunAll(prm)
		},
	},
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func sweepNodes(scale int64) []int {
	if clampScale(scale) > 1 {
		return []int{2, 4, 8, 16, 32}
	}
	return reduce.DefaultNodeCounts
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns every experiment id in paper order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}

// runTable1 echoes the workload configuration, verifying each generator's
// size against the paper's Table 1.
func runTable1(int64) *stats.Result {
	res := &stats.Result{ID: "table1", Title: "Applications and problem sizes"}
	type row struct {
		app   string
		size  string
		check string
	}
	g := grep.DefaultParams()
	m := mpeg.DefaultParams()
	hj := hashjoin.DefaultParams()
	se := sel.DefaultParams()
	ta := tarapp.DefaultParams()
	ps := psort.DefaultParams()
	md := md5app.DefaultParams()
	rd := reduce.DefaultParams()
	rows := []row{
		{"MPEG filter", fmt.Sprintf("%d B", m.FileSize), fmt.Sprintf("generated %d B, %.1f%% P-frames", m.FileSize, 100*float64(mpeg.PBytes(mpeg.BuildStream(m)))/float64(m.FileSize))},
		{"HashJoin", fmt.Sprintf("%dM x %dM", hj.RBytes>>20, hj.SBytes>>20), fmt.Sprintf("%d B records, %d-bit filter", hj.RecordSize, hj.BitvecBits)},
		{"Select", fmt.Sprintf("%dM", se.TableBytes>>20), fmt.Sprintf("%d B records", se.RecordSize)},
		{"Grep", fmt.Sprintf("%d B", g.FileSize), fmt.Sprintf("%d matching lines for %q", g.Matches, g.Pattern)},
		{"Tar", fmt.Sprintf("%dM", int64(ta.Files)*ta.FileSize>>20), fmt.Sprintf("%d files x %d KB", ta.Files, ta.FileSize>>10)},
		{"Parallel sort", fmt.Sprintf("%dM records", ps.Records>>20), fmt.Sprintf("%d B records, %d B keys, %d nodes", ps.RecordSize, ps.KeySize, ps.Hosts)},
		{"MD5", fmt.Sprintf("%dK", md.FileSize>>10), "K-chain interleave for multi-CPU"},
		{"Collective reduction", fmt.Sprintf("%d B", rd.VectorBytes), fmt.Sprintf("%d-element vectors, up to 128 nodes", rd.Elems)},
	}
	for _, r := range rows {
		res.Notes = append(res.Notes, fmt.Sprintf("%-22s %-16s %s", r.app, r.size, r.check))
	}
	return res
}

// runTable2 demonstrates the two reduction semantics of Table 2 and checks
// both against the oracle.
func runTable2(int64) *stats.Result {
	res := &stats.Result{ID: "table2", Title: "Collective reduction semantics"}
	prm := reduce.DefaultParams()
	const p = 8
	one := reduce.Run(reduce.ToOne, true, p, prm)
	dist := reduce.Run(reduce.Distributed, true, p, prm)
	res.Notes = append(res.Notes,
		fmt.Sprintf("Reduce-to-one   (p=%d): y at node 0, latency %v, correct=%v", p, one.Latency, one.Correct),
		fmt.Sprintf("Distributed Red (p=%d): y_i at node i, latency %v, correct=%v", p, dist.Latency, dist.Correct),
		fmt.Sprintf("y[0..4] = %v", one.Final[:5]),
	)
	return res
}

// RunAllExperiments executes the whole registry at one scale, sequentially.
func RunAllExperiments(scale int64) []*stats.Result {
	return RunAll(scale, 1)
}

// RunAll executes the whole registry at one scale, fanning experiments out
// over a pool of workers. Each experiment builds its own sim.Engine, so
// runs are independent; results come back ordered by registry index
// regardless of completion order, making parallel output byte-identical to
// a sequential run. workers < 1 selects runtime.NumCPU().
func RunAll(scale int64, workers int) []*stats.Result {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(Registry) {
		workers = len(Registry)
	}
	out := make([]*stats.Result, len(Registry))
	if workers == 1 {
		for i, e := range Registry {
			out[i] = e.Run(scale)
		}
		return out
	}
	// A panicking experiment (fault-plan crash under -strict-routes, an
	// invariant failure) must not kill its worker goroutine where the CLI's
	// recover cannot see it: capture per-experiment panics and re-raise the
	// first one — in registry order, for determinism — on the caller's
	// goroutine after the pool drains, so deferred output flushing runs.
	panics := make([]any, len(Registry))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() { panics[i] = recover() }()
					out[i] = Registry[i].Run(scale)
				}()
			}
		}()
	}
	for i := range Registry {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("exp: experiment %s panicked: %v", Registry[i].ID, p))
		}
	}
	return out
}

// Shapes summarizes the paper-vs-measured headline numbers of a result;
// EXPERIMENTS.md and the CLI print these lines.
func Shapes(res *stats.Result) []string {
	var out []string
	add := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }
	switch res.ID {
	case "fig3":
		add("normal+pref speedup %.2f (paper 1.13)", res.Speedup("normal+pref"))
		add("active speedup %.2f (paper 1.23)", res.Speedup("active"))
		add("active+pref speedup %.2f (paper 1.36)", res.Speedup("active+pref"))
		a, _ := res.Run("active")
		add("data to host reduced to %.1f%% (paper: 63.5%% of bytes are P-frames)",
			100*float64(a.Traffic)/float64(res.Baseline().Traffic))
	case "fig5":
		add("active speedup %.2f (paper 1.10)", res.Speedup("active"))
		np, _ := res.Run("normal+pref")
		ap, _ := res.Run("active+pref")
		add("prefetch parity %.2f (paper ~1.0)", float64(np.Time)/float64(ap.Time))
		add("host stall share %.1f%% -> %.1f%% (paper 27.6%% -> 16.1%%)",
			100*float64(np.HostStall)/float64(np.Time), 100*float64(ap.HostStall)/float64(ap.Time))
	case "fig7":
		a, _ := res.Run("active")
		np, _ := res.Run("normal+pref")
		add("traffic ratio %.2f (paper 0.25)", float64(a.Traffic)/float64(res.Baseline().Traffic))
		add("normal/active util ratio %.1fx (paper 21x)",
			(res.Baseline().HostUtil()+np.HostUtil())/(2*a.HostUtil()))
	case "fig9":
		add("active speedup %.2f (paper 1.14)", res.Speedup("active"))
	case "fig11":
		a, _ := res.Run("active")
		add("active host traffic %d B (paper: headers only)", a.Traffic)
		add("active host util %.3f (paper ~0)", a.HostUtil())
	case "fig13":
		a, _ := res.Run("active")
		add("per-node traffic ratio %.2f (paper 0.40 = p/(3p-2) at p=4)",
			float64(a.Traffic)/float64(res.Baseline().Traffic))
	case "fig15", "fig16":
		for _, s := range res.Series {
			if s.Name == "speedup" {
				add("max speedup %.2fx (paper: 5.61x / 5.92x at 128 nodes)", s.MaxY())
			}
		}
	case "twolevel":
		host, _ := res.Run("host")
		two, _ := res.Run("two-level")
		if host.Traffic > 0 {
			add("two-level host traffic %.4f%% of host-only (extension: not in the paper)",
				100*float64(two.Traffic)/float64(host.Traffic))
		}
	case "scalesweep":
		var passB, actB, sp *stats.Series
		for i := range res.Series {
			switch res.Series[i].Name {
			case "passive host bytes":
				passB = &res.Series[i]
			case "active host bytes":
				actB = &res.Series[i]
			case "speedup":
				sp = &res.Series[i]
			}
		}
		if passB != nil && actB != nil && len(passB.Y) > 0 {
			last := len(passB.Y) - 1
			add("host I/O at %d hosts: active is %.1f%% of passive (extension: not in the paper)",
				int(passB.X[last]), 100*actB.Y[last]/passB.Y[last])
		}
		if sp != nil {
			add("max speedup %.2fx over the host MST", sp.MaxY())
		}
	case "latsweep":
		var passP99, actP99 *stats.Series
		for i := range res.Series {
			switch res.Series[i].Name {
			case "passive e2e p99 (us)":
				passP99 = &res.Series[i]
			case "active e2e p99 (us)":
				actP99 = &res.Series[i]
			}
		}
		if passP99 != nil && actP99 != nil && len(passP99.Y) > 0 {
			last := len(passP99.Y) - 1
			add("e2e p99 at %d hosts: active %.1fus vs passive %.1fus (extension: not in the paper)",
				int(passP99.X[last]), actP99.Y[last], passP99.Y[last])
		}
	case "hdlsweep":
		if len(res.Series) == 2 && len(res.Series[0].Y) > 0 {
			act, pass := res.Series[0], res.Series[1]
			best := 0.0
			for i := range act.Y {
				if act.Y[i] > 0 {
					if r := pass.Y[i] / act.Y[i]; r > best {
						best = r
					}
				}
			}
			add("best compiled-on-switch speedup %.2fx over the host interpreter (extension: not in the paper)", best)
		}
	case "faultsweep":
		for _, s := range res.Series {
			if s.Name == "goodput_mbps" && len(s.Y) > 1 && s.Y[0] > 0 {
				add("goodput at %.1f%% loss is %.1f%% of fault-free (extension: not in the paper)",
					s.X[len(s.X)-1], 100*s.Y[len(s.Y)-1]/s.Y[0])
			}
		}
	case "collsweep":
		var passB, actB, sp, spills *stats.Series
		for i := range res.Series {
			switch res.Series[i].Name {
			case "passive host bytes":
				passB = &res.Series[i]
			case "active host bytes":
				actB = &res.Series[i]
			case "speedup":
				sp = &res.Series[i]
			case "agg spills vs budget":
				spills = &res.Series[i]
			}
		}
		if passB != nil && actB != nil && len(passB.Y) > 0 {
			last := len(passB.Y) - 1
			add("allreduce host I/O at %d hosts: active is %.1f%% of passive (extension: not in the paper)",
				int(passB.X[last]), 100*actB.Y[last]/passB.Y[last])
		}
		if sp != nil {
			add("max allreduce speedup %.2fx over recursive doubling", sp.MaxY())
		}
		if spills != nil && len(spills.Y) > 0 {
			// The spill cliff: the smallest budget at which the bounded
			// key table stops spilling to the host.
			cliff := -1
			for i := range spills.Y {
				if spills.Y[i] == 0 {
					cliff = int(spills.X[i])
					break
				}
			}
			if cliff >= 0 {
				add("keyagg spill cliff: spills reach 0 at budget %d (from %.0f at budget %d)",
					cliff, spills.Y[0], int(spills.X[0]))
			} else {
				add("keyagg still spilling at budget %d (%.0f spills)",
					int(spills.X[len(spills.X)-1]), spills.Y[len(spills.Y)-1])
			}
		}
	case "fig17":
		add("active 1-cpu speedup %.2f (paper: <1, a slowdown)", res.Speedup("active-1cpu"))
		add("active 4-cpu speedup %.2f (paper 1.50)", res.Speedup("active-4cpu"))
		np, _ := res.Run("normal+pref")
		ap4, _ := res.Run("active+pref-4cpu")
		add("4-cpu +pref vs normal+pref %.2f (paper 1.18)", float64(np.Time)/float64(ap4.Time))
	}
	return out
}
