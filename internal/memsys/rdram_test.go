package memsys

import (
	"testing"
	"testing/quick"

	"activesan/internal/sim"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.BandwidthBytesPerSec != 1.6e9 {
		t.Errorf("bandwidth = %v, want 1.6e9", c.BandwidthBytesPerSec)
	}
	if c.PageHit != 100*sim.Nanosecond || c.PageMiss != 122*sim.Nanosecond {
		t.Errorf("latencies = %v/%v, want 100ns/122ns", c.PageHit, c.PageMiss)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{BandwidthBytesPerSec: 1e9, PageSize: 0, Banks: 4, PageHit: 1, PageMiss: 2},
		{BandwidthBytesPerSec: 1e9, PageSize: 2048, Banks: 4, PageHit: 2, PageMiss: 1},
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("config %d validated but should not", i)
		}
	}
	if err := DefaultConfig().validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestPageHitMissClassification(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, "mem", DefaultConfig())
	eng.Spawn("cpu", func(p *sim.Proc) {
		// First touch of a page is a miss; a second touch in the same page
		// hits; a touch of a different row in the same bank misses again.
		m.Access(p, 0, 128)
		m.Access(p, 64, 128)
		sameBankNewRow := DefaultConfig().PageSize * int64(DefaultConfig().Banks)
		m.Access(p, sameBankNewRow, 128)
	})
	eng.Run()
	st := m.Stats()
	if st.PageHits != 1 || st.PageMisse != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", st.PageHits, st.PageMisse)
	}
	if st.Bytes != 384 {
		t.Fatalf("bytes = %d, want 384", st.Bytes)
	}
}

func TestAccessLatency(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, "mem", DefaultConfig())
	var miss, hit sim.Time
	eng.Spawn("cpu", func(p *sim.Proc) {
		miss = m.Access(p, 0, 128)
		hit = m.Access(p, 128, 128)
	})
	eng.Run()
	// 128 bytes at 1.6 GB/s = 80 ns of occupancy.
	wantMiss := 122*sim.Nanosecond + sim.TransferTime(128, 1.6e9)
	wantHit := 100*sim.Nanosecond + sim.TransferTime(128, 1.6e9)
	if miss != wantMiss {
		t.Errorf("miss access took %v, want %v", miss, wantMiss)
	}
	if hit != wantHit {
		t.Errorf("hit access took %v, want %v", hit, wantHit)
	}
}

func TestBandwidthContention(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, "mem", DefaultConfig())
	var last sim.Time
	const n = 10
	for i := 0; i < n; i++ {
		i := i
		eng.Spawn("dma", func(p *sim.Proc) {
			m.Access(p, int64(i)*131072, 131072) // 128 KB apart: all misses
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	eng.Run()
	// 10 x 128 KB at 1.6 GB/s is 819.2 us of pure occupancy; queueing must
	// push the last completion past that.
	minTotal := sim.TransferTime(n*131072, 1.6e9)
	if last < minTotal {
		t.Fatalf("last completion %v earlier than bus-limited %v", last, minTotal)
	}
	if last > minTotal+10*122*sim.Nanosecond {
		t.Fatalf("last completion %v much later than bus-limited %v", last, minTotal)
	}
}

func TestStreamOpensPages(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, "mem", DefaultConfig())
	eng.Spawn("io", func(p *sim.Proc) {
		m.Stream(p, 0, 64*1024) // touches 32 pages
		// A follow-up access inside the streamed range should page-hit.
		m.Access(p, 40960, 128)
	})
	eng.Run()
	st := m.Stats()
	if st.PageHits != 1 {
		t.Fatalf("page hits = %d, want 1 (stream should open pages)", st.PageHits)
	}
}

func TestReserveDoesNotBlock(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, "mem", DefaultConfig())
	end1 := m.Reserve(0, 1024)
	end2 := m.Reserve(1<<20, 1024)
	if end2 <= end1 {
		t.Fatalf("reservations did not serialize: %v then %v", end1, end2)
	}
}

func TestAddressSpaceAllocation(t *testing.T) {
	s := NewAddressSpace(0x1000, 1<<20)
	a := s.Alloc(100, 64)
	b := s.Alloc(100, 64)
	if a%64 != 0 || b%64 != 0 {
		t.Fatalf("allocations not aligned: %#x %#x", a, b)
	}
	if b <= a || b < a+100 {
		t.Fatalf("allocations overlap: %#x %#x", a, b)
	}
	r := s.AllocRegion(4096, 4096)
	if r.Base%4096 != 0 {
		t.Fatalf("region not page aligned: %#x", r.Base)
	}
	if !r.Contains(r.Base) || r.Contains(r.End()) {
		t.Fatal("region bounds wrong")
	}
}

func TestAddressSpaceExhaustionPanics(t *testing.T) {
	s := NewAddressSpace(0, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation did not panic")
		}
	}()
	s.Alloc(256, 64)
}

func TestAddressSpaceDisjointProperty(t *testing.T) {
	// Property: any sequence of allocations yields pairwise-disjoint regions.
	f := func(sizes []uint16) bool {
		s := NewAddressSpace(0, 1<<30)
		var regs []Region
		for _, sz := range sizes {
			if sz == 0 {
				continue
			}
			regs = append(regs, s.AllocRegion(int64(sz), 64))
		}
		for i := range regs {
			for j := i + 1; j < len(regs); j++ {
				if regs[i].Contains(regs[j].Base) || regs[j].Contains(regs[i].Base) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBankRowStriping(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, "mem", DefaultConfig())
	// Consecutive pages must land in different banks so sequential streams
	// do not thrash one bank.
	b0, _ := m.bankRow(0)
	b1, _ := m.bankRow(DefaultConfig().PageSize)
	if b0 == b1 {
		t.Fatal("consecutive pages map to the same bank")
	}
}
