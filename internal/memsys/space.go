package memsys

import "fmt"

// AddressSpace is a bump allocator over a node's physical address range. The
// benchmarks use it to lay out their data structures (hash tables,
// bit-vectors, I/O buffers) at realistic, distinct addresses so that the
// cache models see representative conflict and reuse behaviour.
type AddressSpace struct {
	next int64
	end  int64
}

// NewAddressSpace returns an allocator over [base, base+size).
func NewAddressSpace(base, size int64) *AddressSpace {
	if base < 0 || size <= 0 {
		panic("memsys: invalid address space bounds")
	}
	return &AddressSpace{next: base, end: base + size}
}

// Alloc returns the base of a fresh region of the given size, aligned to
// align (which must be a power of two; 0 means 64-byte alignment).
func (s *AddressSpace) Alloc(size int64, align int64) int64 {
	if size <= 0 {
		panic("memsys: Alloc of non-positive size")
	}
	if align == 0 {
		align = 64
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("memsys: alignment %d is not a power of two", align))
	}
	base := (s.next + align - 1) &^ (align - 1)
	if base+size > s.end {
		panic(fmt.Sprintf("memsys: address space exhausted (need %d bytes at %#x, end %#x)", size, base, s.end))
	}
	s.next = base + size
	return base
}

// Remaining reports unallocated bytes (ignoring alignment padding to come).
func (s *AddressSpace) Remaining() int64 { return s.end - s.next }

// Region is a convenience pairing of a base address and length.
type Region struct {
	Base int64
	Len  int64
}

// AllocRegion allocates and returns a Region.
func (s *AddressSpace) AllocRegion(size, align int64) Region {
	return Region{Base: s.Alloc(size, align), Len: size}
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr int64) bool { return addr >= r.Base && addr < r.Base+r.Len }

// End returns the first address past the region.
func (r Region) End() int64 { return r.Base + r.Len }
