// Package memsys models the RDRAM memory system the paper attaches to both
// the host and the switch: 1.6 GB/s peak bandwidth, 100 ns page-hit and
// 122 ns page-miss latency, with banked open-page tracking and FIFO
// controller contention.
package memsys

import (
	"fmt"

	"activesan/internal/sim"
)

// Config holds the timing parameters of one RDRAM channel.
type Config struct {
	// BandwidthBytesPerSec is the peak data rate (paper: 1.6 GB/s).
	BandwidthBytesPerSec float64
	// PageHit is the access latency when the target row is open.
	PageHit sim.Time
	// PageMiss is the access latency when a new row must be activated.
	PageMiss sim.Time
	// PageSize is the row size in bytes.
	PageSize int64
	// Banks is the number of independent banks with open-row tracking.
	Banks int
}

// DefaultConfig returns the paper's RDRAM parameters (Direct RDRAM
// 256/288-Mbit with 2 KB pages across 16 banks).
func DefaultConfig() Config {
	return Config{
		BandwidthBytesPerSec: 1.6e9,
		PageHit:              100 * sim.Nanosecond,
		PageMiss:             122 * sim.Nanosecond,
		PageSize:             2048,
		Banks:                16,
	}
}

func (c Config) validate() error {
	if c.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("memsys: bandwidth must be positive, got %v", c.BandwidthBytesPerSec)
	}
	if c.PageSize <= 0 || c.Banks <= 0 {
		return fmt.Errorf("memsys: page size and banks must be positive")
	}
	if c.PageHit <= 0 || c.PageMiss < c.PageHit {
		return fmt.Errorf("memsys: need 0 < PageHit <= PageMiss")
	}
	return nil
}

// Stats accumulates memory-system activity.
type Stats struct {
	Accesses  int64
	PageHits  int64
	PageMisse int64
	Bytes     int64
}

// RDRAM is one memory channel with its controller. Accesses are serialized
// on the data bus (occupancy = size/bandwidth) while access latency is
// pipelined on top, matching the paper's "maximum bandwidth 1.6 GB/s,
// 100/122 ns latency" model.
type RDRAM struct {
	eng   *sim.Engine
	cfg   Config
	bus   *sim.Server
	open  []int64 // per-bank open row (-1 = none)
	stats Stats
}

// New returns a memory channel; it panics on an invalid configuration since
// that is a programming error in experiment setup.
func New(eng *sim.Engine, name string, cfg Config) *RDRAM {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	open := make([]int64, cfg.Banks)
	for i := range open {
		open[i] = -1
	}
	return &RDRAM{
		eng:  eng,
		cfg:  cfg,
		bus:  sim.NewServer(eng, name+".bus"),
		open: open,
	}
}

// Config returns the channel's configuration.
func (m *RDRAM) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated counters.
func (m *RDRAM) Stats() Stats { return m.stats }

// BusUtilization reports data-bus occupancy over elapsed simulated time.
func (m *RDRAM) BusUtilization() float64 { return m.bus.Utilization() }

// BusBusyTime reports cumulative data-bus occupancy, for utilization
// computed against an externally chosen elapsed time.
func (m *RDRAM) BusBusyTime() sim.Time { return m.bus.BusyTime() }

// bankRow maps an address to its bank and row; consecutive pages stripe
// across banks so sequential streams page-hit heavily.
func (m *RDRAM) bankRow(addr int64) (bank int, row int64) {
	page := addr / m.cfg.PageSize
	return int(page % int64(m.cfg.Banks)), page / int64(m.cfg.Banks)
}

// latency classifies addr as a page hit or miss, updates the open row, and
// returns the access latency.
func (m *RDRAM) latency(addr int64) sim.Time {
	bank, row := m.bankRow(addr)
	if m.open[bank] == row {
		m.stats.PageHits++
		return m.cfg.PageHit
	}
	m.stats.PageMisse++
	m.open[bank] = row
	return m.cfg.PageMiss
}

// Access performs a blocking memory access of size bytes at addr: the caller
// waits for bus queueing, the page hit/miss latency, and the data transfer.
// It returns the total time the caller was delayed.
func (m *RDRAM) Access(p *sim.Proc, addr int64, size int64) sim.Time {
	start := p.Now()
	lat := m.latency(addr)
	m.stats.Accesses++
	m.stats.Bytes += size
	xfer := sim.TransferTime(size, m.cfg.BandwidthBytesPerSec)
	end := m.bus.Reserve(xfer) + lat
	p.SleepUntil(end)
	return p.Now() - start
}

// Reserve books bus occupancy and latency for an access without blocking,
// returning the completion instant. DMA engines use this to charge memory
// bandwidth for incoming packets without dedicating a process per line.
func (m *RDRAM) Reserve(addr int64, size int64) sim.Time {
	lat := m.latency(addr)
	m.stats.Accesses++
	m.stats.Bytes += size
	xfer := sim.TransferTime(size, m.cfg.BandwidthBytesPerSec)
	return m.bus.Reserve(xfer) + lat
}

// Stream charges a large sequential transfer (e.g. an I/O buffer fill) as a
// pipelined burst: one activation latency plus occupancy for all bytes.
// The caller blocks until the burst completes.
func (m *RDRAM) Stream(p *sim.Proc, addr int64, size int64) sim.Time {
	start := p.Now()
	lat := m.latency(addr)
	m.stats.Accesses++
	m.stats.Bytes += size
	// Mark every page the burst touches as open so later accesses behave.
	for a := addr + m.cfg.PageSize; a < addr+size; a += m.cfg.PageSize {
		bank, row := m.bankRow(a)
		m.open[bank] = row
	}
	xfer := sim.TransferTime(size, m.cfg.BandwidthBytesPerSec)
	end := m.bus.Reserve(xfer) + lat
	p.SleepUntil(end)
	return p.Now() - start
}
