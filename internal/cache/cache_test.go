package cache

import (
	"testing"
	"testing/quick"

	"activesan/internal/memsys"
	"activesan/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "c", Size: 32 * 1024, LineSize: 64, Assoc: 2}
	if err := good.validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "odd-line", Size: 1024, LineSize: 48, Assoc: 2},
		{Name: "odd-sets", Size: 3 * 1024, LineSize: 64, Assoc: 2},
	}
	for _, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("config %q validated but should not", c.Name)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := New(Config{Name: "t", Size: 1024, LineSize: 64, Assoc: 2})
	if hit, _ := c.Access(0, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _ := c.Access(0, false); !hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if hit, _ := c.Access(63, false); !hit {
		t.Fatal("same-line access missed")
	}
	// Next line misses.
	if hit, _ := c.Access(64, false); hit {
		t.Fatal("next-line access hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 64 B lines, 2 sets: lines 0,2,4 (even line numbers) share set 0.
	c := New(Config{Name: "t", Size: 256, LineSize: 64, Assoc: 2})
	c.Access(0, false)   // set 0, way A
	c.Access(128, false) // set 0, way B
	c.Access(0, false)   // touch A so B is LRU
	c.Access(256, false) // evicts line 128
	if !c.Contains(0) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(128) {
		t.Fatal("LRU line survived")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestCacheWritebacks(t *testing.T) {
	c := New(Config{Name: "t", Size: 128, LineSize: 64, Assoc: 1})
	c.Access(0, true) // dirty line in set 0
	_, wb := c.Access(128, false)
	if !wb {
		t.Fatal("dirty eviction did not report writeback")
	}
	_, wb = c.Access(256, false)
	if wb {
		t.Fatal("clean eviction reported writeback")
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestCacheFlush(t *testing.T) {
	c := New(Config{Name: "t", Size: 256, LineSize: 64, Assoc: 2})
	c.Access(0, true)
	c.Access(64, false)
	if d := c.Flush(); d != 1 {
		t.Fatalf("flush reported %d dirty lines, want 1", d)
	}
	if c.Contains(0) || c.Contains(64) {
		t.Fatal("lines survived flush")
	}
}

func TestCacheWorkingSetProperty(t *testing.T) {
	// Property: a working set no larger than the cache, accessed twice,
	// misses only on the first pass (no conflict misses beyond capacity for
	// a strided sequential walk filling each set evenly).
	f := func(seed uint8) bool {
		c := New(Config{Name: "t", Size: 4096, LineSize: 64, Assoc: 2})
		base := int64(seed) * 4096
		for pass := 0; pass < 2; pass++ {
			for off := int64(0); off < 4096; off += 64 {
				c.Access(base+off, false)
			}
		}
		st := c.Stats()
		return st.Misses == 64 && st.Hits == 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("empty stats miss rate should be 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Fatalf("miss rate = %v, want 0.25", s.MissRate())
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(2, 4096)
	if tlb.Lookup(0) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Lookup(100) {
		t.Fatal("same-page lookup missed")
	}
	tlb.Lookup(4096) // second entry
	tlb.Lookup(0)    // refresh first
	tlb.Lookup(8192) // evicts page 1 (LRU)
	if !tlb.Lookup(0) {
		t.Fatal("MRU translation evicted")
	}
	if tlb.Lookup(4096) {
		t.Fatal("evicted translation still present")
	}
	if tlb.PageSize() != 4096 {
		t.Fatalf("page size = %d", tlb.PageSize())
	}
}

func TestHostHierConfigScaling(t *testing.T) {
	full := HostHierConfig(1)
	if full.L1D.Size != 32*1024 || full.L2.Size != 512*1024 {
		t.Fatalf("full-size host caches wrong: %+v", full)
	}
	scaled := HostHierConfig(4)
	if scaled.L1D.Size != 8*1024 || scaled.L2.Size != 128*1024 {
		t.Fatalf("scaled host caches wrong: L1D=%d L2=%d", scaled.L1D.Size, scaled.L2.Size)
	}
	if scaled.L2.LineSize != 128 || scaled.L2.Assoc != 2 {
		t.Fatal("scaling must preserve line size and associativity")
	}
}

func TestSwitchHierConfigMatchesPaper(t *testing.T) {
	c := SwitchHierConfig()
	if c.L1I.Size != 4096 || c.L1I.LineSize != 64 || c.L1I.Assoc != 2 {
		t.Fatalf("switch I$ = %+v", c.L1I)
	}
	if c.L1D.Size != 1024 || c.L1D.LineSize != 32 || c.L1D.Assoc != 2 {
		t.Fatalf("switch D$ = %+v", c.L1D)
	}
	if c.L2 != nil {
		t.Fatal("switch CPU must not have an L2")
	}
}

func newTestHier(t *testing.T) (*sim.Engine, *Hierarchy) {
	t.Helper()
	eng := sim.NewEngine()
	mem := memsys.New(eng, "mem", memsys.DefaultConfig())
	return eng, NewHierarchy(eng, HostHierConfig(1), mem, 1<<40)
}

func TestHierarchyLevels(t *testing.T) {
	eng, h := newTestHier(t)
	var first, second, evicted Result
	eng.Spawn("cpu", func(p *sim.Proc) {
		first = h.Access(0, Load)
		p.SleepUntil(first.Ready)
		second = h.Access(0, Load)
		// Blow L1 set 0 while keeping L2 resident: L1D is 32 KB 2-way with
		// 64 B lines, so lines 256 KB apart... use addresses that alias in
		// L1 set 0 but are distinct L2 lines.
		l1SetStride := int64(32 * 1024 / 2) // sets*linesize
		h.Access(1*l1SetStride, Load)
		h.Access(2*l1SetStride, Load)
		evicted = h.Access(0, Load)
	})
	eng.Run()
	if first.Level != InMemory {
		t.Fatalf("cold access level = %v, want memory", first.Level)
	}
	if second.Level != InL1 {
		t.Fatalf("warm access level = %v, want L1", second.Level)
	}
	if second.Ready != first.Ready {
		t.Fatalf("L1 hit added latency: %v -> %v", first.Ready, second.Ready)
	}
	if evicted.Level != InL2 {
		t.Fatalf("L1-evicted access level = %v, want L2", evicted.Level)
	}
}

func TestHierarchyTLBWalk(t *testing.T) {
	eng, h := newTestHier(t)
	var r Result
	eng.Spawn("cpu", func(p *sim.Proc) {
		r = h.Access(0, Load)
	})
	eng.Run()
	if !r.TLBMiss {
		t.Fatal("first access should miss the TLB")
	}
	if h.TLBWalks() != 1 {
		t.Fatalf("walks = %d, want 1", h.TLBWalks())
	}
	// Second access to the same page should not walk.
	eng2 := sim.NewEngine()
	mem := memsys.New(eng2, "mem", memsys.DefaultConfig())
	h2 := NewHierarchy(eng2, HostHierConfig(1), mem, 1<<40)
	eng2.Spawn("cpu", func(p *sim.Proc) {
		h2.Access(0, Load)
		r = h2.Access(64, Load)
	})
	eng2.Run()
	if r.TLBMiss {
		t.Fatal("same-page access missed the TLB")
	}
}

func TestHierarchyIfetchUsesICache(t *testing.T) {
	eng, h := newTestHier(t)
	eng.Spawn("cpu", func(p *sim.Proc) {
		h.Access(0, Ifetch)
		h.Access(0, Ifetch)
	})
	eng.Run()
	if h.L1I().Stats().Accesses != 2 {
		t.Fatalf("L1I accesses = %d, want 2", h.L1I().Stats().Accesses)
	}
	if h.L1D().Stats().Accesses != 0 {
		t.Fatalf("L1D accesses = %d, want 0", h.L1D().Stats().Accesses)
	}
}

func TestSingleLevelHierarchy(t *testing.T) {
	eng := sim.NewEngine()
	mem := memsys.New(eng, "smem", memsys.DefaultConfig())
	h := NewHierarchy(eng, SwitchHierConfig(), mem, 1<<40)
	var miss, hit Result
	eng.Spawn("sp", func(p *sim.Proc) {
		miss = h.Access(0, Load)
		p.SleepUntil(miss.Ready)
		hit = h.Access(0, Load)
	})
	eng.Run()
	if miss.Level != InMemory {
		t.Fatalf("switch D$ cold miss level = %v", miss.Level)
	}
	if hit.Level != InL1 {
		t.Fatalf("switch D$ warm level = %v", hit.Level)
	}
	if miss.TLBMiss {
		t.Fatal("switch CPU should not model TLBs")
	}
}

func TestHierarchyFlushData(t *testing.T) {
	eng, h := newTestHier(t)
	eng.Spawn("cpu", func(p *sim.Proc) {
		h.Access(0, Load)
		h.FlushData()
		r := h.Access(0, Load)
		if r.Level != InMemory {
			t.Errorf("post-flush access level = %v, want memory", r.Level)
		}
	})
	eng.Run()
}

func TestHashJoinBitVectorThrashesSwitchDCache(t *testing.T) {
	// The paper: "the bit-vector is too big for its limited L1 data cache".
	// A 128 KB bit-vector randomly probed through a 1 KB cache must miss
	// nearly always.
	eng := sim.NewEngine()
	mem := memsys.New(eng, "smem", memsys.DefaultConfig())
	h := NewHierarchy(eng, SwitchHierConfig(), mem, 1<<40)
	eng.Spawn("sp", func(p *sim.Proc) {
		state := int64(12345)
		for i := 0; i < 2000; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			addr := (state >> 16) & (128*1024 - 1)
			h.Access(addr, Load)
		}
	})
	eng.Run()
	mr := h.L1D().Stats().MissRate()
	if mr < 0.95 {
		t.Fatalf("random 128KB probes through 1KB D$ missed only %.2f", mr)
	}
}

func TestCacheInvariantsProperty(t *testing.T) {
	// Properties over random access sequences: a just-accessed line is
	// resident; counters reconcile (hits+misses == accesses, evictions ==
	// misses - residency growth).
	f := func(addrs []uint16, writes []bool) bool {
		c := New(Config{Name: "p", Size: 2048, LineSize: 64, Assoc: 2})
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(int64(a), w)
			if !c.Contains(int64(a)) {
				return false
			}
		}
		st := c.Stats()
		if st.Hits+st.Misses != st.Accesses {
			return false
		}
		resident := 0
		for a := int64(0); a < 1<<16; a += 64 {
			if c.Contains(a) {
				resident++
			}
		}
		return st.Misses-st.Evictions == int64(resident)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{Name: "t", Size: 256, LineSize: 64, Assoc: 2})
	c.Access(0, true)
	if !c.Invalidate(0) {
		t.Fatal("resident line not invalidated")
	}
	if c.Contains(0) {
		t.Fatal("line survived invalidation")
	}
	if c.Invalidate(0) {
		t.Fatal("absent line reported invalidated")
	}
}

func TestInvalidateRangeDropsBothLevels(t *testing.T) {
	eng, h := newTestHier(t)
	eng.Spawn("cpu", func(p *sim.Proc) {
		h.Access(0, Load)
		h.Access(4096, Load)
		h.InvalidateRange(0, 128)
		if h.L1D().Contains(0) || h.L2().Contains(0) {
			t.Error("invalidated range still resident")
		}
		if !h.L2().Contains(4096) {
			t.Error("unrelated line dropped")
		}
	})
	eng.Run()
}
