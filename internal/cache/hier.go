package cache

import (
	"activesan/internal/sim"

	"activesan/internal/memsys"
)

// Kind classifies a memory reference.
type Kind int

// Reference kinds. Loads stall the processor until the first data returns;
// stores and prefetches retire into the outstanding-miss window (the CPU
// model enforces the paper's four-outstanding-lines rule).
const (
	Load Kind = iota
	Store
	Prefetch
	Ifetch
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	case Ifetch:
		return "ifetch"
	default:
		return "unknown"
	}
}

// Level identifies where a reference was satisfied.
type Level int

// Hit levels.
const (
	InL1     Level = 1
	InL2     Level = 2
	InMemory Level = 3
)

// Result reports the outcome of one reference.
type Result struct {
	Level   Level
	Ready   sim.Time // absolute instant the data is available
	TLBMiss bool
}

// HierConfig assembles a processor's cache hierarchy.
type HierConfig struct {
	L1I, L1D Config
	L2       *Config // nil for single-level hierarchies (the switch CPU)
	// TLBEntries of 0 disables TLB modelling (the switch CPU uses physical
	// addresses).
	TLBEntries int
	PageSize   int64
	// L1Lat and L2Lat are lookup latencies charged past the first level.
	L1Lat sim.Time
	L2Lat sim.Time
}

// HostHierConfig returns the paper's host hierarchy: 32 KB 2-way split L1,
// 512 KB 2-way L2 with 128-byte lines, 64-entry fully-associative TLBs. The
// scale divisor supports the HashJoin methodology of shrinking the data-side
// caches by 8x (L1D 8 KB... the paper scales L1D to 8 KB and L2 to 64 KB).
func HostHierConfig(scale int64) HierConfig {
	if scale <= 0 {
		scale = 1
	}
	l2 := Config{Name: "L2", Size: 512 * 1024 / scale, LineSize: 128, Assoc: 2}
	return HierConfig{
		L1I:        Config{Name: "L1I", Size: 32 * 1024, LineSize: 64, Assoc: 2},
		L1D:        Config{Name: "L1D", Size: 32 * 1024 / scale, LineSize: 64, Assoc: 2},
		L2:         &l2,
		TLBEntries: 64,
		PageSize:   4096,
		L1Lat:      sim.HostClock.Cycles(1),
		L2Lat:      sim.HostClock.Cycles(12),
	}
}

// ScaledHostHierConfig returns the host hierarchy the paper uses for the
// database benchmarks (HashJoin/Select): "an 8 KB primary data cache and a
// 64 KB secondary cache keeping the same line sizes and associativities",
// which lets a 16 MB x 128 MB join stand in for a 128 MB x 1 GB one.
func ScaledHostHierConfig() HierConfig {
	cfg := HostHierConfig(1)
	cfg.L1D.Size = 8 * 1024
	cfg.L2.Size = 64 * 1024
	return cfg
}

// SwitchHierConfig returns the embedded switch CPU's caches: a 4 KB 2-way
// instruction cache with 64-byte lines and a 1 KB 2-way data cache with
// 32-byte lines, both supporting a single outstanding request and backed
// directly by the switch's memory.
func SwitchHierConfig() HierConfig {
	return HierConfig{
		L1I:   Config{Name: "SI", Size: 4 * 1024, LineSize: 64, Assoc: 2},
		L1D:   Config{Name: "SD", Size: 1 * 1024, LineSize: 32, Assoc: 2},
		L1Lat: sim.SwitchClock.Cycles(1),
	}
}

// Hierarchy ties caches, TLBs and a memory channel together and prices each
// reference.
type Hierarchy struct {
	eng  *sim.Engine
	cfg  HierConfig
	l1i  *Cache
	l1d  *Cache
	l2   *Cache
	itlb *TLB
	dtlb *TLB
	mem  *memsys.RDRAM

	// ptBase is where page-table entries live; TLB walks access it so that
	// walks have realistic cache behaviour.
	ptBase int64

	tlbWalks int64
}

// NewHierarchy builds a hierarchy over the given memory channel.
func NewHierarchy(eng *sim.Engine, cfg HierConfig, mem *memsys.RDRAM, ptBase int64) *Hierarchy {
	h := &Hierarchy{
		eng:    eng,
		cfg:    cfg,
		l1i:    New(cfg.L1I),
		l1d:    New(cfg.L1D),
		mem:    mem,
		ptBase: ptBase,
	}
	if cfg.L2 != nil {
		h.l2 = New(*cfg.L2)
	}
	if cfg.TLBEntries > 0 {
		h.itlb = NewTLB(cfg.TLBEntries, cfg.PageSize)
		h.dtlb = NewTLB(cfg.TLBEntries, cfg.PageSize)
	}
	return h
}

// L1D returns the first-level data cache (for tests and invariants).
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L1I returns the first-level instruction cache.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L2 returns the second-level cache, or nil.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// DTLB returns the data TLB, or nil.
func (h *Hierarchy) DTLB() *TLB { return h.dtlb }

// ITLB returns the instruction TLB, or nil.
func (h *Hierarchy) ITLB() *TLB { return h.itlb }

// TLBWalks reports how many page-table walks have occurred.
func (h *Hierarchy) TLBWalks() int64 { return h.tlbWalks }

// Access prices one reference at addr. The returned Result.Ready is the
// absolute time the data is available; the caller decides how much of that
// is architectural stall.
func (h *Hierarchy) Access(addr int64, k Kind) Result {
	now := h.eng.Now()
	ready := now
	var res Result

	l1, tlb := h.l1d, h.dtlb
	if k == Ifetch {
		l1, tlb = h.l1i, h.itlb
	}

	if tlb != nil && !tlb.Lookup(addr) {
		res.TLBMiss = true
		ready = h.walk(addr, ready)
	}

	write := k == Store
	if hit, _ := l1.Access(addr, write); hit {
		res.Level = InL1
		res.Ready = ready
		return res
	}
	ready += h.cfg.L1Lat

	if h.l2 != nil {
		hit, wb := h.l2.Access(addr, write)
		if wb {
			h.mem.Reserve(addr, h.l2.LineSize()) // victim writeback occupies the bus
		}
		if hit {
			res.Level = InL2
			res.Ready = ready + h.cfg.L2Lat
			return res
		}
		ready += h.cfg.L2Lat
		res.Level = InMemory
		fill := h.mem.Reserve(l1LineFill(h.l2, addr), h.l2.LineSize())
		if fill > ready {
			ready = fill
		}
		res.Ready = ready
		return res
	}

	// Single-level hierarchy: miss goes straight to memory.
	res.Level = InMemory
	fill := h.mem.Reserve(l1LineFill(l1, addr), l1.LineSize())
	if fill > ready {
		ready = fill
	}
	res.Ready = ready
	return res
}

// l1LineFill returns the line-aligned fill address for addr.
func l1LineFill(c *Cache, addr int64) int64 { return c.LineBase(addr) }

// walk models a page-table walk: the PTE is itself fetched through the L2
// (so hot walks are cheap and cold walks pay memory latency), plus a fixed
// handler cost folded in by the CPU model.
func (h *Hierarchy) walk(addr int64, ready sim.Time) sim.Time {
	h.tlbWalks++
	vpn := addr / h.cfg.PageSize
	pte := h.ptBase + vpn*8
	if h.l2 == nil {
		fill := h.mem.Reserve(pte, 64)
		if fill > ready {
			ready = fill
		}
		return ready
	}
	hit, _ := h.l2.Access(pte, false)
	if hit {
		return ready + h.cfg.L2Lat
	}
	fill := h.mem.Reserve(h.l2.LineBase(pte), h.l2.LineSize())
	ready += h.cfg.L2Lat
	if fill > ready {
		ready = fill
	}
	return ready
}

// InvalidateRange drops [base, base+n) from the data-side caches — the
// coherence action of a DMA write into host memory. Without it, reused I/O
// buffers would look warm and the paper's cold-miss effects would vanish.
func (h *Hierarchy) InvalidateRange(base, n int64) {
	if n <= 0 {
		return
	}
	step := h.l1d.LineSize()
	for a := h.l1d.LineBase(base); a < base+n; a += step {
		h.l1d.Invalidate(a)
	}
	if h.l2 != nil {
		step = h.l2.LineSize()
		for a := h.l2.LineBase(base); a < base+n; a += step {
			h.l2.Invalidate(a)
		}
	}
}

// FlushData empties the data-side caches (used between experiment phases
// when the paper assumes cold caches).
func (h *Hierarchy) FlushData() {
	h.l1d.Flush()
	if h.l2 != nil {
		h.l2.Flush()
	}
}
