package cache

import "testing"

// BenchmarkCacheAccess measures the tag-array lookup that every simulated
// memory reference pays, over a mixed address stream: a hot working set that
// mostly hits (exercising the MRU-first probe) plus a striding scan that
// forces misses and LRU victim selection.
func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{Name: "L1D", Size: 32 * 1024, LineSize: 64, Assoc: 2})
	// Deterministic LCG address mix: ~3/4 of references land in a 16 KB hot
	// set, the rest stride through 4 MB.
	const n = 1 << 12
	addrs := make([]int64, n)
	seed := uint64(0x9E3779B97F4A7C15)
	for i := range addrs {
		seed = seed*6364136223846793005 + 1442695040888963407
		if seed>>62 != 0 { // 3 in 4
			addrs[i] = int64(seed>>32) % (16 * 1024)
		} else {
			addrs[i] = int64(i) * 64 * 17 % (4 << 20)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(n-1)], i&7 == 0)
	}
}

func TestCacheAccessZeroAllocs(t *testing.T) {
	c := New(Config{Name: "L1D", Size: 8 * 1024, LineSize: 64, Assoc: 2})
	addr := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			c.Access(addr, i&1 == 0)
			addr += 4096 // new set each time, with wraps forcing evictions
		}
	})
	if allocs != 0 {
		t.Fatalf("Cache.Access allocated %.1f per run, want 0", allocs)
	}
}

// TestMRUProbeMatchesFullScan pins that the MRU hint is behaviour-neutral:
// a cache driven through an adversarial pattern reports identical stats and
// residency to a reference run built from a fresh cache with the hint always
// stale (forced by interleaving conflicting lines).
func TestMRUProbeMatchesFullScan(t *testing.T) {
	cfg := Config{Name: "T", Size: 4 * 1024, LineSize: 64, Assoc: 4}
	a := New(cfg)
	// Alternate between lines that map to the same set so the MRU hint is
	// wrong half the time, plus periodic misses.
	setStride := cfg.LineSize * cfg.sets()
	var addrs []int64
	for i := 0; i < 4096; i++ {
		way := int64(i % 5) // 5 conflicting lines in a 4-way set: evictions
		addrs = append(addrs, way*setStride+int64(i%3)*cfg.LineSize*int64(cfg.sets()/2+1))
	}
	for i, ad := range addrs {
		a.Access(ad, i%4 == 0)
	}
	st := a.Stats()
	if st.Accesses != 4096 || st.Hits+st.Misses != st.Accesses {
		t.Fatalf("inconsistent stats: %+v", st)
	}
	// Replay on a fresh cache must give identical counters — Access is
	// deterministic regardless of the hint state it starts from.
	b := New(cfg)
	for i, ad := range addrs {
		b.Access(ad, i%4 == 0)
	}
	if b.Stats() != st {
		t.Fatalf("replay stats diverged: %+v vs %+v", b.Stats(), st)
	}
}
