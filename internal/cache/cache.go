// Package cache models set-associative write-back caches and TLBs with LRU
// replacement, plus the host's two-level hierarchy over the RDRAM model.
// Benchmarks issue representative address streams through these models; the
// resulting hit/miss behaviour drives the cache-stall components of the
// paper's execution-time breakdowns.
package cache

import "fmt"

// Config describes one cache array.
type Config struct {
	Name     string
	Size     int64 // total bytes
	LineSize int64 // bytes per line
	Assoc    int   // ways per set
}

func (c Config) sets() int64 {
	return c.Size / (c.LineSize * int64(c.Assoc))
}

func (c Config) validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %q: size, line size and associativity must be positive", c.Name)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineSize)
	}
	n := c.sets()
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("cache %q: %d sets (size/line/assoc must give a power of two)", c.Name, n)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// MissRate returns misses/accesses, or 0 before any access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   int64
	valid bool
	dirty bool
	lru   int64 // higher = more recently used
}

// Cache is a single set-associative array. It models tags only — data
// contents live in the benchmark's own Go values.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask int64
	shift   uint
	tick    int64
	stats   Stats

	// mru holds each set's most-recently-touched way — a probe hint only,
	// validated on every use. Consecutive references to a hot line (the
	// dominant access pattern in streaming handlers) hit on the first tag
	// compare instead of scanning the set.
	mru []int32
}

// New builds a cache; invalid geometry panics (experiment-setup error).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := cfg.sets()
	sets := make([][]line, n)
	ways := make([]line, n*int64(cfg.Assoc))
	for i := range sets {
		sets[i], ways = ways[:cfg.Assoc:cfg.Assoc], ways[cfg.Assoc:]
	}
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: n - 1, shift: shift, mru: make([]int32, n)}
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(addr int64) (set int64, tag int64) {
	lineAddr := addr >> c.shift
	// The tag keeps the full line address: it can never collide across sets
	// and needs no extra masking on each compare.
	return lineAddr & c.setMask, lineAddr
}

// Access looks up addr, allocating the line on a miss. It returns whether
// the access hit and, on miss, whether a dirty victim was written back.
// write marks the line dirty.
func (c *Cache) Access(addr int64, write bool) (hit bool, writeback bool) {
	set, tag := c.index(addr)
	ways := c.sets[set]
	c.tick++
	c.stats.Accesses++
	// MRU-first probe: re-touching the set's hottest line — the common case
	// for streaming reference patterns — resolves on one tag compare.
	if m := c.mru[set]; int(m) < len(ways) {
		if w := &ways[m]; w.valid && w.tag == tag {
			w.lru = c.tick
			if write {
				w.dirty = true
			}
			c.stats.Hits++
			return true, false
		}
	}
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.tick
			if write {
				ways[i].dirty = true
			}
			c.mru[set] = int32(i)
			c.stats.Hits++
			return true, false
		}
	}
	c.stats.Misses++
	// Choose victim: first invalid way, else least recently used.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	if ways[victim].valid {
		c.stats.Evictions++
		if ways[victim].dirty {
			writeback = true
			c.stats.Writebacks++
		}
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	c.mru[set] = int32(victim)
	return false, writeback
}

// Contains reports whether addr's line is resident, without touching LRU or
// counters. Used by tests and invariant checks.
func (c *Cache) Contains(addr int64) bool {
	set, tag := c.index(addr)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate removes addr's line if resident (DMA coherence), reporting
// whether it was present.
func (c *Cache) Invalidate(addr int64) bool {
	set, tag := c.index(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i] = line{}
			return true
		}
	}
	return false
}

// Flush invalidates every line, returning how many dirty lines were
// discarded (the caller decides whether to charge writebacks).
func (c *Cache) Flush() (dirty int) {
	for _, ways := range c.sets {
		for i := range ways {
			if ways[i].valid && ways[i].dirty {
				dirty++
			}
			ways[i] = line{}
		}
	}
	return dirty
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int64 { return c.cfg.LineSize }

// LineBase returns the base address of addr's line.
func (c *Cache) LineBase(addr int64) int64 { return addr &^ (c.cfg.LineSize - 1) }
