package cache

// TLB models a fully-associative translation buffer with LRU replacement
// (the paper's hosts have 64-entry instruction and data TLBs).
type TLB struct {
	entries  int
	pageBits uint
	vpns     []int64
	lru      []int64
	tick     int64
	stats    Stats
}

// NewTLB returns a TLB with the given entry count and page size.
func NewTLB(entries int, pageSize int64) *TLB {
	if entries <= 0 || pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic("cache: invalid TLB geometry")
	}
	bits := uint(0)
	for p := pageSize; p > 1; p >>= 1 {
		bits++
	}
	vpns := make([]int64, entries)
	for i := range vpns {
		vpns[i] = -1
	}
	return &TLB{entries: entries, pageBits: bits, vpns: vpns, lru: make([]int64, entries)}
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// Lookup translates addr, filling the entry on a miss, and reports whether
// the translation hit.
func (t *TLB) Lookup(addr int64) bool {
	vpn := addr >> t.pageBits
	t.tick++
	t.stats.Accesses++
	victim := 0
	for i, v := range t.vpns {
		if v == vpn {
			t.lru[i] = t.tick
			t.stats.Hits++
			return true
		}
		if t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	t.stats.Misses++
	t.vpns[victim] = vpn
	t.lru[victim] = t.tick
	return false
}

// PageSize returns the translation granularity in bytes.
func (t *TLB) PageSize() int64 { return 1 << t.pageBits }
