// Package prof wires the CLIs' -cpuprofile/-memprofile flags to
// runtime/pprof. Both commands share the same semantics: parent directories
// are created like -json's, the CPU profile covers everything after startup,
// and the heap profile is written at exit after a final GC so it reflects
// live objects rather than collectable garbage.
package prof

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two flag values ("" disables either) and
// returns a stop function to defer. Errors are reported, not fatal: a bad
// profile path should not kill a long sweep.
func Start(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		} else if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			f.Close()
		} else {
			cpuFile = f
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Printf("wrote %s\n", cpuPath)
			}
		}
		if memPath != "" {
			f, err := create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Printf("wrote %s\n", memPath)
		}
	}
}

// create opens path for writing, making parent directories as needed.
func create(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.Create(path)
}
