package aswitch

import (
	"activesan/internal/san"
)

// ATB is the address translation buffer: a direct-mapped table that turns a
// physical memory address into a (buffer, offset) pair, giving handlers the
// illusion of a flat memory over the streaming data buffers. Each switch CPU
// has its own ATB with one entry per data buffer, indexed by the address's
// 512-byte block number — streams arrive "in order", so consecutive blocks
// occupy consecutive entries and deallocation walks the same way.
type ATB struct {
	entries []*DataBuffer

	hits, misses int64
}

// NewATB builds an n-entry table.
func NewATB(n int) *ATB {
	if n <= 0 {
		panic("aswitch: ATB needs entries")
	}
	return &ATB{entries: make([]*DataBuffer, n)}
}

// Entries returns the table size.
func (a *ATB) Entries() int { return len(a.entries) }

// slot maps an address to its direct-mapped entry index.
func (a *ATB) slot(addr int64) int {
	return int((addr / san.MTU) % int64(len(a.entries)))
}

// Lookup translates addr; the second result is false when no live mapping
// covers it (the data has not arrived, or was deallocated).
func (a *ATB) Lookup(addr int64) (*DataBuffer, bool) {
	b := a.entries[a.slot(addr)]
	if b != nil && b.Contains(addr) {
		a.hits++
		return b, true
	}
	a.misses++
	return nil, false
}

// CanInstall reports whether buf's slot is free.
func (a *ATB) CanInstall(buf *DataBuffer) bool {
	return a.entries[a.slot(buf.addr)] == nil
}

// Install maps buf at its address's slot; the slot must be free.
func (a *ATB) Install(buf *DataBuffer) {
	s := a.slot(buf.addr)
	if a.entries[s] != nil {
		panic("aswitch: ATB slot conflict — caller must wait for CanInstall")
	}
	a.entries[s] = buf
}

// ReleaseBelow removes every mapping wholly below end (the hardware behind
// the paper's Deallocate_Buffer macro: "releasing data buffers holding valid
// mapped addresses less than that end address") and returns the freed
// buffers.
func (a *ATB) ReleaseBelow(end int64) []*DataBuffer {
	var freed []*DataBuffer
	for i, b := range a.entries {
		if b != nil && b.End() <= end {
			freed = append(freed, b)
			a.entries[i] = nil
		}
	}
	return freed
}

// Release removes exactly buf's mapping if present.
func (a *ATB) Release(buf *DataBuffer) bool {
	s := a.slot(buf.addr)
	if a.entries[s] == buf {
		a.entries[s] = nil
		return true
	}
	return false
}

// Live reports how many entries are mapped.
func (a *ATB) Live() int {
	n := 0
	for _, b := range a.entries {
		if b != nil {
			n++
		}
	}
	return n
}

// Stats reports lookup hits and misses.
func (a *ATB) Stats() (hits, misses int64) { return a.hits, a.misses }
