package aswitch

import (
	"testing"

	"activesan/internal/san"
	"activesan/internal/sim"
)

func TestDataBufferValidAt(t *testing.T) {
	b := &DataBuffer{size: 512, fillStart: 1000 * sim.Nanosecond, fillRate: 1e9}
	// First 32-byte line valid after 32 ns of fill.
	if got := b.ValidAt(0); got != 1032*sim.Nanosecond {
		t.Fatalf("ValidAt(0) = %v, want 1032ns", got)
	}
	if got := b.ValidAt(31); got != 1032*sim.Nanosecond {
		t.Fatalf("ValidAt(31) = %v, want same line", got)
	}
	if got := b.ValidAt(32); got != 1064*sim.Nanosecond {
		t.Fatalf("ValidAt(32) = %v, want next line", got)
	}
	if got := b.TailValidAt(); got != 1512*sim.Nanosecond {
		t.Fatalf("TailValidAt = %v, want 1512ns", got)
	}
	// Instant buffers (composed locally) are valid at fillStart.
	ib := &DataBuffer{size: 512, fillStart: 7}
	if ib.ValidAt(511) != 7 {
		t.Fatal("instant buffer not valid at fillStart")
	}
}

func TestDBAReserveSplit(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDBA(16, 2)
	var inputs []*DataBuffer
	eng.Spawn("p", func(p *sim.Proc) {
		// 14 input allocations succeed without blocking; the 15th blocks.
		for i := 0; i < 14; i++ {
			inputs = append(inputs, d.AllocInput(p))
		}
		// Output reserve still available.
		ob := d.AllocOutput(p)
		d.Free(ob)
		// Free one input, and the pool must accept another.
		d.Free(inputs[0])
		inputs[0] = d.AllocInput(p)
	})
	eng.Run()
	if len(inputs) != 14 {
		t.Fatalf("allocated %d input buffers", len(inputs))
	}
	if d.InUse() != 14 {
		t.Fatalf("in use = %d, want 14", d.InUse())
	}
	if d.Peak() != 15 {
		t.Fatalf("peak = %d, want 15 (14 input + 1 output)", d.Peak())
	}
}

func TestDBADoubleFreePanics(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDBA(4, 1)
	eng.Spawn("p", func(p *sim.Proc) {
		b := d.AllocInput(p)
		d.Free(b)
		defer func() {
			if recover() == nil {
				t.Error("double free did not panic")
			}
		}()
		d.Free(b)
	})
	eng.Run()
}

func TestATBDirectMapped(t *testing.T) {
	a := NewATB(16)
	b0 := &DataBuffer{addr: 0, size: 512, live: true}
	b16 := &DataBuffer{addr: 16 * 512, size: 512, live: true} // same slot as b0
	a.Install(b0)
	if a.CanInstall(b16) {
		t.Fatal("conflicting slot reported free")
	}
	if got, ok := a.Lookup(100); !ok || got != b0 {
		t.Fatal("lookup inside b0 failed")
	}
	if _, ok := a.Lookup(16 * 512); ok {
		t.Fatal("lookup found unmapped address")
	}
	freed := a.ReleaseBelow(512)
	if len(freed) != 1 || freed[0] != b0 {
		t.Fatalf("ReleaseBelow freed %d buffers", len(freed))
	}
	if !a.CanInstall(b16) {
		t.Fatal("slot still occupied after release")
	}
	a.Install(b16)
	if a.Live() != 1 {
		t.Fatalf("live = %d, want 1", a.Live())
	}
}

func TestATBReleaseBelowPartial(t *testing.T) {
	a := NewATB(16)
	for i := int64(0); i < 4; i++ {
		a.Install(&DataBuffer{addr: i * 512, size: 512, live: true})
	}
	// end = 1024 frees exactly the first two.
	freed := a.ReleaseBelow(1024)
	if len(freed) != 2 {
		t.Fatalf("freed %d, want 2", len(freed))
	}
	if a.Live() != 2 {
		t.Fatalf("live = %d, want 2", a.Live())
	}
}

// rig builds an active switch with n endpoint ports; eps[i] is the
// endpoint-side port for node i.
func rig(eng *sim.Engine, n int, cfg Config) (*ActiveSwitch, []san.Port) {
	sw := New(eng, san.NodeID(100), "asw", cfg)
	eps := make([]san.Port, n)
	for i := 0; i < n; i++ {
		up := san.NewLink(eng, "up", cfg.Base.Link)
		down := san.NewLink(eng, "down", cfg.Base.Link)
		sw.AttachPort(i, up, down)
		eps[i] = san.Port{In: down, Out: up}
		sw.SetRoute(san.NodeID(i), i)
	}
	return sw, eps
}

func TestHandlerInvocationAndReply(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(4)
	sw, eps := rig(eng, 4, cfg)
	var gotArgs any
	sw.Register(3, "echo", func(x *Ctx) {
		gotArgs = x.Args()
		x.ReleaseArgs()
		x.Send(SendSpec{Dst: x.Src(), Type: san.Data, Addr: 0x9000, Size: 256, Payload: "reply"})
	})
	sw.Start()
	var reply *san.Packet
	eng.Spawn("host", func(p *sim.Proc) {
		eps[1].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 1, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 3, Addr: 0x2000, CPUID: -1, Flow: 42, Last: true},
			Size: 64, Payload: "args",
		})
		reply = eps[1].In.Recv(p)
		eps[1].In.ReturnCredit()
	})
	eng.Run()
	defer eng.Shutdown()
	if gotArgs != "args" {
		t.Fatalf("handler args = %v", gotArgs)
	}
	if reply == nil || reply.Payload != "reply" || reply.Hdr.Addr != 0x9000 {
		t.Fatalf("reply = %+v", reply)
	}
	if sw.ActiveStats().Invocations != 1 {
		t.Fatalf("invocations = %d", sw.ActiveStats().Invocations)
	}
	if sw.DBA().InUse() != 0 {
		t.Fatalf("leaked %d buffers", sw.DBA().InUse())
	}
}

func TestStreamProcessingBackpressure(t *testing.T) {
	// Stream 64 packets (far more than 16 buffers) through a slow handler;
	// credits and the DBA must throttle the producer without deadlock.
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	sw, eps := rig(eng, 2, cfg)
	const pkts = 64
	base := int64(0x10000)
	var processed int
	sw.Register(1, "slurp", func(x *Ctx) {
		x.ReleaseArgs() // free the invocation buffer
		cursor := base
		for i := 0; i < pkts; i++ {
			b := x.WaitStream(cursor)
			x.ReadAll(b)
			x.Compute(2000) // slow consumer
			cursor = b.End()
			x.Deallocate(cursor)
			processed++
		}
	})
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0x8000, Flow: 7, Last: true},
			Size: 32,
		})
		m := &san.Message{Hdr: san.Header{Src: 0, Dst: sw.ID(), Type: san.Data, Addr: base, Flow: 8}, Size: pkts * 512}
		for _, pkt := range m.Packets(nil) {
			eps[0].Out.SendAsync(p, pkt)
		}
	})
	eng.Run()
	defer eng.Shutdown()
	if processed != pkts {
		t.Fatalf("processed %d packets, want %d", processed, pkts)
	}
	if sw.DBA().InUse() != 0 {
		t.Fatalf("leaked %d buffers", sw.DBA().InUse())
	}
	if sw.DBA().Peak() > 16 {
		t.Fatalf("peak buffers %d exceeds hardware", sw.DBA().Peak())
	}
}

func TestHandlerStartsBeforeCopyCompletes(t *testing.T) {
	// The separated control/data paths let the CPU start before the data
	// buffer copy finishes: with per-line valid bits, reading byte 0 must
	// not wait for the packet tail.
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	sw, eps := rig(eng, 2, cfg)
	var headRead, tailRead sim.Time
	sw.Register(1, "peek", func(x *Ctx) {
		// Free the argument buffer first: its 0x8000 slot aliases the
		// stream's 0x4000 slot in the direct-mapped ATB.
		x.ReleaseArgs()
		b := x.WaitStream(0x4000)
		x.Peek(b, 4)
		headRead = x.Now()
		x.ReadAll(b)
		tailRead = x.Now()
		x.Deallocate(b.End())
	})
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0x8000, Flow: 7, Last: true},
			Size: 32,
		})
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.Data, Addr: 0x4000, Flow: 8, Last: true},
			Size: 512,
		})
	})
	eng.Run()
	defer eng.Shutdown()
	if headRead == 0 || tailRead == 0 {
		t.Fatal("handler did not run")
	}
	// Reading the head must happen at least ~400ns before the tail is in.
	if tailRead-headRead < 400*sim.Nanosecond {
		t.Fatalf("head at %v, tail at %v: no overlap of copy and compute", headRead, tailRead)
	}
}

func TestMultiCPUDispatch(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	cfg.NumCPUs = 4
	sw, eps := rig(eng, 2, cfg)
	ran := make([]int, 4)
	sw.Register(2, "which", func(x *Ctx) {
		ran[x.CPU().ID()]++
		x.ReleaseArgs()
	})
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		for k := 0; k < 4; k++ {
			eps[0].Out.Send(p, &san.Packet{
				Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 2, CPUID: k, Addr: int64(k) * 512, Flow: int64(k + 1), Last: true},
				Size: 32,
			})
		}
	})
	eng.Run()
	defer eng.Shutdown()
	for k, n := range ran {
		if n != 1 {
			t.Fatalf("CPU %d ran %d invocations, want 1 (all: %v)", k, n, ran)
		}
	}
}

func TestForwardZeroCopy(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(3)
	sw, eps := rig(eng, 3, cfg)
	sw.Register(1, "redirect", func(x *Ctx) {
		x.ReleaseArgs()
		b := x.WaitStream(0)
		x.Forward(SendSpec{Dst: 2, Type: san.Data, Addr: 0x7000, Flow: 99}, b, 0, true)
		x.Deallocate(b.End())
	})
	sw.Start()
	var got *san.Packet
	eng.Spawn("src", func(p *sim.Proc) {
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0x8000, Flow: 1, Last: true},
			Size: 16,
		})
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.Data, Addr: 0, Flow: 2, Last: true},
			Size: 512, Payload: []byte("payload"),
		})
	})
	eng.Spawn("dst", func(p *sim.Proc) {
		got = eps[2].In.Recv(p)
		eps[2].In.ReturnCredit()
	})
	eng.Run()
	defer eng.Shutdown()
	if got == nil {
		t.Fatal("forwarded packet not delivered")
	}
	if got.Hdr.Addr != 0x7000 || !got.Hdr.Last || string(got.Payload.([]byte)) != "payload" {
		t.Fatalf("forwarded packet = %+v", got)
	}
	if got.Hdr.Src != sw.ID() {
		t.Fatal("forwarded packet should carry the switch as source")
	}
}

func TestHandlerState(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	sw, eps := rig(eng, 2, cfg)
	sw.SetState(4, 0)
	sw.Register(4, "count", func(x *Ctx) {
		x.SetState(x.State().(int) + 1)
		x.ReleaseArgs()
	})
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			eps[0].Out.Send(p, &san.Packet{
				Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 4, Addr: int64(i) * 512, Flow: int64(i + 1), Last: true},
				Size: 32,
			})
		}
	})
	eng.Run()
	defer eng.Shutdown()
	if sw.HandlerState(4) != 3 {
		t.Fatalf("state = %v, want 3", sw.HandlerState(4))
	}
}

func TestNextArrivalInterleavedStreams(t *testing.T) {
	// Two interleaved streams; the handler consumes whatever arrives so
	// neither can starve the other.
	eng := sim.NewEngine()
	cfg := DefaultConfig(3)
	sw, eps := rig(eng, 3, cfg)
	var seen []int64
	const per = 20
	sw.Register(1, "merge", func(x *Ctx) {
		x.ReleaseArgs()
		for i := 0; i < 2*per; i++ {
			b := x.NextArrival()
			x.ReadAll(b)
			seen = append(seen, b.Addr())
			x.DeallocateBuf(b)
		}
	})
	sw.Start()
	eng.Spawn("kick", func(p *sim.Proc) {
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 1 << 20, Flow: 100, Last: true},
			Size: 16,
		})
	})
	for s := 0; s < 2; s++ {
		s := s
		eng.SpawnAt(sim.Microsecond, "stream", func(p *sim.Proc) {
			base := int64(s) * (1 << 16)
			m := &san.Message{Hdr: san.Header{Src: san.NodeID(s), Dst: sw.ID(), Type: san.Data, Addr: base, Flow: int64(s + 1)}, Size: per * 512}
			for _, pkt := range m.Packets(nil) {
				eps[s].Out.SendAsync(p, pkt)
			}
		})
	}
	eng.Run()
	defer eng.Shutdown()
	if len(seen) != 2*per {
		t.Fatalf("consumed %d buffers, want %d", len(seen), 2*per)
	}
	if sw.DBA().InUse() != 0 {
		t.Fatalf("leaked %d buffers", sw.DBA().InUse())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(4)
	bad.NumCPUs = 5
	if err := bad.validate(); err == nil {
		t.Fatal("5 CPUs accepted")
	}
	bad = DefaultConfig(4)
	bad.OutReserve = 16
	if err := bad.validate(); err == nil {
		t.Fatal("OutReserve >= NumBuffers accepted")
	}
}

func TestRegisterConflictsPanic(t *testing.T) {
	eng := sim.NewEngine()
	sw := New(eng, 100, "asw", DefaultConfig(2))
	sw.Register(1, "a", func(*Ctx) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	sw.Register(1, "b", func(*Ctx) {})
}

func TestUnregisteredHandlerCounted(t *testing.T) {
	// An active message naming an empty jump-table slot must be counted
	// and dropped without wedging the switch.
	eng := sim.NewEngine()
	sw, eps := rig(eng, 2, DefaultConfig(2))
	sw.Register(1, "real", func(x *Ctx) { x.ReleaseArgs() })
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 33, Addr: 0, Flow: 1, Last: true},
			Size: 32,
		})
		// A later, registered invocation must still work.
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 512, Flow: 2, Last: true},
			Size: 32,
		})
	})
	eng.Run()
	defer eng.Shutdown()
	st := sw.ActiveStats()
	if st.Unregistered != 1 {
		t.Fatalf("unregistered = %d, want 1", st.Unregistered)
	}
	if sw.CPU(0).Runs() != 1 {
		t.Fatalf("runs = %d, want 1 (the registered handler)", sw.CPU(0).Runs())
	}
}

func TestHandlerPanicSurfacesWithProcName(t *testing.T) {
	// A buggy handler must fail the simulation visibly (engine-context
	// panic), not hang or kill the process silently.
	eng := sim.NewEngine()
	sw, eps := rig(eng, 2, DefaultConfig(2))
	sw.Register(1, "buggy", func(x *Ctx) { panic("handler bug") })
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Flow: 1, Last: true},
			Size: 32,
		})
	})
	defer func() {
		eng.Shutdown()
		if recover() == nil {
			t.Fatal("handler panic did not surface")
		}
	}()
	eng.Run()
}

func TestPerHandlerStats(t *testing.T) {
	eng := sim.NewEngine()
	sw, eps := rig(eng, 2, DefaultConfig(2))
	sw.Register(5, "a", func(x *Ctx) {
		x.ReleaseArgs()
		x.Send(SendSpec{Dst: x.Src(), Type: san.Data, Addr: 0x100, Size: 300, Flow: 9})
	})
	sw.Register(6, "b", func(x *Ctx) { x.ReleaseArgs() })
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		for i, id := range []int{5, 5, 6} {
			eps[0].Out.Send(p, &san.Packet{
				Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: id, Addr: int64(i) * 512, Flow: int64(i + 1), Last: true},
				Size: 32,
			})
		}
	})
	eng.Spawn("sink", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			eps[0].In.Recv(p)
			eps[0].In.ReturnCredit()
		}
	})
	eng.Run()
	defer eng.Shutdown()
	a := sw.HandlerStatsFor(5)
	b := sw.HandlerStatsFor(6)
	if a.Invocations != 2 || a.MessagesSent != 2 || a.BytesSent != 600 {
		t.Fatalf("handler 5 stats = %+v", a)
	}
	if b.Invocations != 1 || b.MessagesSent != 0 {
		t.Fatalf("handler 6 stats = %+v", b)
	}
	if sw.HandlerStatsFor(99).Invocations != 0 {
		t.Fatal("out-of-range id not zero")
	}
}

func TestReadAtOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	sw, eps := rig(eng, 2, DefaultConfig(2))
	sw.Register(1, "oob", func(x *Ctx) {
		b := x.WaitStream(x.BaseAddr())
		x.ReadAt(b, 0, b.Size()+1) // one past the end
	})
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Flow: 1, Last: true},
			Size: 64,
		})
	})
	defer func() {
		eng.Shutdown()
		if recover() == nil {
			t.Fatal("out-of-range ReadAt did not panic")
		}
	}()
	eng.Run()
}

func TestPeekClampsToBuffer(t *testing.T) {
	eng := sim.NewEngine()
	sw, eps := rig(eng, 2, DefaultConfig(2))
	ok := false
	sw.Register(1, "peek", func(x *Ctx) {
		b := x.WaitStream(x.BaseAddr())
		x.Peek(b, 10_000) // clamps to the 64-byte buffer
		ok = true
		x.DeallocateBuf(b)
	})
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Flow: 1, Last: true},
			Size: 64,
		})
	})
	eng.Run()
	defer eng.Shutdown()
	if !ok {
		t.Fatal("peek never completed")
	}
}

func TestDeallocateReturnsCount(t *testing.T) {
	eng := sim.NewEngine()
	sw, eps := rig(eng, 2, DefaultConfig(2))
	var freed []int
	sw.Register(1, "count", func(x *Ctx) {
		x.ReleaseArgs()
		// Wait for three packets, then free them all with one call.
		for _, a := range []int64{0x10000, 0x10200, 0x10400} {
			x.WaitStream(a)
		}
		freed = append(freed, x.Deallocate(0x10000+3*512))
		freed = append(freed, x.Deallocate(0x10000+3*512)) // idempotent
	})
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		eps[0].Out.Send(p, &san.Packet{
			Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0x8000, Flow: 1, Last: true},
			Size: 16,
		})
		m := &san.Message{Hdr: san.Header{Src: 0, Dst: sw.ID(), Type: san.Data, Addr: 0x10000, Flow: 2}, Size: 3 * 512}
		for _, pkt := range m.Packets(nil) {
			eps[0].Out.Send(p, pkt)
		}
	})
	eng.Run()
	defer eng.Shutdown()
	if len(freed) != 2 || freed[0] != 3 || freed[1] != 0 {
		t.Fatalf("freed = %v, want [3 0]", freed)
	}
}

func TestRoundRobinDispatch(t *testing.T) {
	// ActiveMsg with CPUID -1 rotates across the switch CPUs.
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	cfg.NumCPUs = 2
	sw, eps := rig(eng, 2, cfg)
	var ran []int
	sw.Register(2, "which", func(x *Ctx) {
		ran = append(ran, x.CPU().ID())
		x.ReleaseArgs()
	})
	sw.Start()
	eng.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			eps[0].Out.Send(p, &san.Packet{
				Hdr:  san.Header{Src: 0, Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 2, CPUID: -1, Addr: int64(i) * 512, Flow: int64(i + 1), Last: true},
				Size: 32,
			})
		}
	})
	eng.Run()
	defer eng.Shutdown()
	if len(ran) != 4 {
		t.Fatalf("ran = %v", ran)
	}
	counts := map[int]int{}
	for _, c := range ran {
		counts[c]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("round robin skewed: %v", ran)
	}
}
