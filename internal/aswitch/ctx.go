package aswitch

import (
	"fmt"

	"activesan/internal/san"
	"activesan/internal/sim"
)

// Cost constants for the switch CPU's buffer ports: one cycle per 4-byte
// word moved between a register and a data buffer, a small fixed cost to
// compose or forward a packet header, and two cycles to post a deallocation
// to the DBA.
const (
	wordBytes        = 4
	packetHeaderCost = 8
	deallocCycles    = 2
	argReadCycles    = 4
)

// Ctx is the execution context handed to a handler: it carries the paper's
// programming model — memory-mapped stream reads through the ATB,
// Deallocate_Buffer, message composition through the send unit — and charges
// all work to the owning switch CPU's timing model.
type Ctx struct {
	p   *sim.Proc
	sw  *ActiveSwitch
	c   *SwitchCPU
	inv *Invocation
}

// checkCrash aborts the handler when its switch crashed while the handler
// was blocked or between operations. The abort is cooperative: it fires at
// the Ctx seams (stream waits, reads, sends), which is where a real run-time
// kernel would deliver the kill.
func (x *Ctx) checkCrash() {
	if x.sw.crashed {
		panic(crashAbort{handler: x.inv.HandlerID})
	}
}

// Now returns the current simulated time.
func (x *Ctx) Now() sim.Time { return x.p.Now() }

// Switch returns the active switch the handler runs on.
func (x *Ctx) Switch() *ActiveSwitch { return x.sw }

// CPU returns the switch CPU executing the handler.
func (x *Ctx) CPU() *SwitchCPU { return x.c }

// Src returns the node that sent the invoking message.
func (x *Ctx) Src() san.NodeID { return x.inv.Src }

// BaseAddr returns the mapped address of the invoking message's payload
// (the paper's ADDRESS2 argument area).
func (x *Ctx) BaseAddr() int64 { return x.inv.BaseAddr }

// Flow returns the invoking message's flow id.
func (x *Ctx) Flow() int64 { return x.inv.Flow }

// Args returns the invoking message's argument payload, charging the reads
// that fetch it from the argument buffer.
func (x *Ctx) Args() any {
	x.c.cpu.Compute(x.p, argReadCycles)
	return x.inv.Args
}

// State returns the per-switch state registered for this handler id.
func (x *Ctx) State() any { return x.sw.states[x.inv.HandlerID] }

// SetState replaces the per-switch state for this handler id.
func (x *Ctx) SetState(v any) { x.sw.states[x.inv.HandlerID] = v }

// Compute charges n instructions on the switch CPU.
func (x *Ctx) Compute(n int64) { x.c.cpu.Compute(x.p, n) }

// MemLoad references handler state in switch memory through the switch
// CPU's 1 KB data cache (misses stall — the bit-vector effect the paper
// describes for HashJoin).
func (x *Ctx) MemLoad(addr int64) { x.c.cpu.Load(x.p, addr) }

// MemStore writes handler state in switch memory.
func (x *Ctx) MemStore(addr int64) { x.c.cpu.Store(x.p, addr) }

// Ifetch models an instruction fetch through the switch CPU's 4 KB I-cache
// (used by the svm interpreter, which executes handlers per-instruction).
func (x *Ctx) Ifetch(addr int64) { x.c.cpu.Ifetch(x.p, addr) }

// waitValid parks the handler until t; arrival waits are idle time, not
// cache stall, so they bypass the CPU's stall accounting.
func (x *Ctx) waitValid(t sim.Time) {
	x.c.cpu.Flush(x.p)
	if t > x.p.Now() {
		x.p.SleepUntil(t)
	}
	x.checkCrash()
}

// WaitStream blocks until a data buffer mapped at addr exists and returns
// it. This is the in-order streaming access pattern of the paper's example
// handler: data "typically comes into the switch in order".
func (x *Ctx) WaitStream(addr int64) *DataBuffer {
	x.c.cpu.Flush(x.p)
	for {
		x.checkCrash()
		if b, ok := x.c.atb.Lookup(addr); ok {
			return b
		}
		x.sw.mapSig.Wait(x.p)
	}
}

// NextArrival blocks until any not-yet-consumed buffer is mapped for this
// CPU and returns the oldest, marking it consumed. Handlers over multiple
// interleaved input streams (parallel sort, collective reduction) use this
// so that no stream can starve another.
func (x *Ctx) NextArrival() *DataBuffer {
	x.c.cpu.Flush(x.p)
	for {
		x.checkCrash()
		x.c.pruneArrivals()
		for _, b := range x.c.arrivals {
			if b.live && !b.consumed {
				b.consumed = true
				return b
			}
		}
		x.sw.mapSig.Wait(x.p)
	}
}

// ReadAt waits until bytes [off, off+n) of b are valid and charges the
// loads that move them through the buffer read port. It returns the
// buffer's payload for functional use.
func (x *Ctx) ReadAt(b *DataBuffer, off, n int64) any {
	if n <= 0 {
		return b.payload
	}
	if off < 0 || off+n > b.size {
		panic(fmt.Sprintf("aswitch: ReadAt [%d,%d) outside buffer of %d bytes", off, off+n, b.size))
	}
	x.waitValid(b.ValidAt(off + n - 1))
	x.c.cpu.Compute(x.p, (n+wordBytes-1)/wordBytes)
	return b.payload
}

// ReadAll reads the entire buffer (stalling until its tail is valid) and
// returns its payload.
func (x *Ctx) ReadAll(b *DataBuffer) any { return x.ReadAt(b, 0, b.size) }

// Peek waits only for the first n bytes to be valid and charges only their
// loads — the MPEG frame filter's header-checking pattern.
func (x *Ctx) Peek(b *DataBuffer, n int64) any {
	if n > b.size {
		n = b.size
	}
	return x.ReadAt(b, 0, n)
}

// Deallocate releases every buffer on this CPU mapped wholly below end —
// the paper's Deallocate_Buffer(buf+off) macro — and returns how many were
// freed.
func (x *Ctx) Deallocate(end int64) int {
	freed := x.c.atb.ReleaseBelow(end)
	for _, b := range freed {
		x.sw.dba.Free(b)
	}
	if len(freed) > 0 {
		x.c.cpu.Compute(x.p, int64(len(freed))*deallocCycles)
		x.c.pruneArrivals()
		x.sw.mapSig.Fire()
	}
	return len(freed)
}

// DeallocateBuf releases exactly one buffer.
func (x *Ctx) DeallocateBuf(b *DataBuffer) {
	if x.c.atb.Release(b) {
		x.sw.dba.Free(b)
		x.c.cpu.Compute(x.p, deallocCycles)
		x.c.pruneArrivals()
		x.sw.mapSig.Fire()
	}
}

// ReleaseArgs frees exactly the buffer holding the invoking message's
// payload, if any. Handlers call it once the arguments are read so the
// argument buffer's ATB slot cannot alias a stream block.
func (x *Ctx) ReleaseArgs() {
	if b, ok := x.c.atb.Lookup(x.inv.BaseAddr); ok {
		x.DeallocateBuf(b)
	}
}

// SendSpec describes an outgoing message from a handler.
type SendSpec struct {
	Dst       san.NodeID
	Type      san.Type
	HandlerID int
	// CPUID directs the packet at a specific switch CPU on the receiving
	// switch; -1 lets the dispatch unit choose.
	CPUID   int
	Addr    int64
	Size    int64
	Flow    int64 // 0 = allocate a fresh flow
	Payload any
	Split   func(i int, off, n int64) any
}

// Send composes a message in output staging buffers and injects its packets
// through the crossbar's (N+1)th port. The switch CPU pays one cycle per
// word written plus a fixed per-packet header cost; it blocks only for
// output-buffer and central-queue availability (backpressure), which is
// idle time, not busy time.
func (x *Ctx) Send(spec SendSpec) {
	x.checkCrash()
	hdr := san.Header{
		Src:       x.sw.ID(),
		Dst:       spec.Dst,
		Type:      spec.Type,
		HandlerID: spec.HandlerID,
		CPUID:     spec.CPUID,
		Addr:      spec.Addr,
		Flow:      spec.Flow,
	}
	if hdr.Flow == 0 {
		hdr.Flow = x.sw.NextFlow()
	}
	m := &san.Message{Hdr: hdr, Size: spec.Size, Payload: spec.Payload}
	pkts := m.Packets(spec.Split)
	for _, pkt := range pkts {
		buf := x.sw.dba.AllocOutput(x.p)
		words := (pkt.Size + wordBytes - 1) / wordBytes
		x.c.cpu.Compute(x.p, words+packetHeaderCost)
		x.c.cpu.Flush(x.p)
		if x.sw.stamp != nil {
			pkt.Stamp = x.sw.stamp(x.p.Now())
		}
		if err := x.sw.Inject(x.p, pkt); err != nil {
			x.sw.dba.Free(buf)
			panic(err)
		}
		x.sw.dba.Free(buf)
		x.sw.stats.PacketsSent++
		x.sw.stats.BytesSent += pkt.Size
		x.sw.perHandler[x.inv.HandlerID].BytesSent += pkt.Size
	}
	x.sw.stats.MessagesSent++
	x.sw.perHandler[x.inv.HandlerID].MessagesSent++
}

// Forward re-targets one mapped input buffer to a new destination without
// copying — the ISA's "send data buffers to other nodes" extension. The
// packet leaves once the buffer's tail is valid; the CPU pays only the
// header cost. The source buffer stays mapped until Deallocate.
func (x *Ctx) Forward(spec SendSpec, src *DataBuffer, seq int, last bool) {
	x.waitValid(src.TailValidAt())
	hdr := san.Header{
		Src:       x.sw.ID(),
		Dst:       spec.Dst,
		Type:      spec.Type,
		HandlerID: spec.HandlerID,
		CPUID:     spec.CPUID,
		Addr:      spec.Addr,
		Flow:      spec.Flow,
		Seq:       seq,
		Last:      last,
	}
	if hdr.Flow == 0 {
		panic("aswitch: Forward requires an explicit flow id")
	}
	pkt := &san.Packet{Hdr: hdr, Size: src.size, Payload: src.payload}
	x.c.cpu.Compute(x.p, packetHeaderCost)
	x.c.cpu.Flush(x.p)
	if x.sw.stamp != nil {
		pkt.Stamp = x.sw.stamp(x.p.Now())
	}
	if err := x.sw.Inject(x.p, pkt); err != nil {
		panic(err)
	}
	x.sw.stats.PacketsSent++
	x.sw.stats.BytesSent += pkt.Size
	x.sw.perHandler[x.inv.HandlerID].BytesSent += pkt.Size
}

// Proc exposes the underlying process for integration points (e.g. the Tar
// handler issuing I/O requests through host-side helpers).
func (x *Ctx) Proc() *sim.Proc { return x.p }
