// Package aswitch implements the paper's active switch: a conventional
// central-output-queue switch (package san) extended with a dispatch unit, a
// jump table of handler program counters, an address translation buffer
// (ATB), sixteen 512-byte data buffers with cache-line valid bits, a data
// buffer administrator (DBA), a send unit, and one to four embedded 500 MHz
// switch processors. Handlers are Go functions that run under the switch
// CPU's timing model and access streaming data through the memory-mapped
// buffer abstraction of the paper's Section 2.
package aswitch

import (
	"fmt"

	"activesan/internal/sim"
)

// ValidLineBytes is the granularity of the per-line valid bits inside a data
// buffer. A handler touching a line that has not yet streamed in stalls the
// switch CPU until it becomes valid, which is what lets handlers start
// processing before the copy completes.
const ValidLineBytes int64 = 32

// DataBuffer is one of the switch's on-chip staging buffers. Incoming
// packets fill it at the link rate starting at fillStart; ValidAt computes
// the instant a given byte's line becomes valid, modelling the per-line
// valid bits in O(1) instead of an event per line.
type DataBuffer struct {
	id   int
	addr int64 // mapped physical address of byte 0
	size int64 // bytes occupied

	fillStart sim.Time
	fillRate  float64 // bytes/sec; 0 means valid immediately
	lineBytes int64   // valid-bit granularity; 0 means ValidLineBytes

	payload any

	live     bool
	consumed bool
	output   bool // allocated from the send-unit reserve
	last     bool // the packet carried the message's Last flag
}

// Last reports whether this buffer held its message's final packet —
// handlers over variable-length streams (active-disk pushdown output) use
// it for termination.
func (b *DataBuffer) Last() bool { return b.last }

// ID returns the buffer's slot number.
func (b *DataBuffer) ID() int { return b.id }

// Addr returns the mapped address of the buffer's first byte.
func (b *DataBuffer) Addr() int64 { return b.addr }

// Size returns how many bytes the buffer holds.
func (b *DataBuffer) Size() int64 { return b.size }

// Payload returns the functional content carried by the packet.
func (b *DataBuffer) Payload() any { return b.payload }

// End returns the first mapped address past the buffer's data.
func (b *DataBuffer) End() int64 { return b.addr + b.size }

// Contains reports whether mapped address a falls inside the buffer.
func (b *DataBuffer) Contains(a int64) bool { return a >= b.addr && a < b.addr+b.size }

// ValidAt returns the absolute time the line holding byte offset off becomes
// valid.
func (b *DataBuffer) ValidAt(off int64) sim.Time {
	if off < 0 || off >= b.size && b.size > 0 {
		panic(fmt.Sprintf("aswitch: ValidAt offset %d outside buffer of %d bytes", off, b.size))
	}
	if b.fillRate == 0 {
		return b.fillStart
	}
	lb := b.lineBytes
	if lb <= 0 {
		lb = ValidLineBytes
	}
	lineEnd := (off/lb + 1) * lb
	if lineEnd > b.size {
		lineEnd = b.size
	}
	return b.fillStart + sim.TransferTime(lineEnd, b.fillRate)
}

// TailValidAt returns when the buffer's last byte becomes valid.
func (b *DataBuffer) TailValidAt() sim.Time {
	if b.size == 0 || b.fillRate == 0 {
		return b.fillStart
	}
	return b.ValidAt(b.size - 1)
}

// DBA is the data buffer administrator: it owns the pool of NumBuffers
// on-chip buffers, reserving OutReserve of them for the send unit so that a
// handler composing output can always make progress even when inbound
// streams have filled every admission slot.
type DBA struct {
	inputPermits  *sim.Semaphore
	outputPermits *sim.Semaphore
	// freeIDs recycles slot numbers; DataBuffer structs themselves are
	// allocated fresh so that stale references (e.g. a CPU's arrival list)
	// can never alias a later occupant of the same slot.
	freeIDs []int
	inUse   int
	total   int

	allocs, frees int64
	peak          int
}

// NewDBA builds the administrator with n total buffers, outReserve of which
// are dedicated to output staging.
func NewDBA(n, outReserve int) *DBA {
	if n <= 0 || outReserve < 0 || outReserve >= n {
		panic(fmt.Sprintf("aswitch: bad DBA sizing n=%d outReserve=%d", n, outReserve))
	}
	d := &DBA{
		inputPermits:  sim.NewSemaphore(n - outReserve),
		outputPermits: sim.NewSemaphore(outReserve),
		total:         n,
	}
	for i := n - 1; i >= 0; i-- {
		d.freeIDs = append(d.freeIDs, i)
	}
	return d
}

// AllocInput takes an admission slot and a buffer for an arriving packet,
// blocking until one is free (this is the backpressure that holds inbound
// credits).
func (d *DBA) AllocInput(p *sim.Proc) *DataBuffer {
	d.inputPermits.Acquire(p)
	return d.take(false)
}

// AllocOutput takes a send-unit buffer for message composition.
func (d *DBA) AllocOutput(p *sim.Proc) *DataBuffer {
	d.outputPermits.Acquire(p)
	return d.take(true)
}

func (d *DBA) take(output bool) *DataBuffer {
	if len(d.freeIDs) == 0 {
		panic("aswitch: DBA permit accounting broken — no free buffer")
	}
	id := d.freeIDs[len(d.freeIDs)-1]
	d.freeIDs = d.freeIDs[:len(d.freeIDs)-1]
	b := &DataBuffer{id: id, live: true, output: output}
	d.inUse++
	d.allocs++
	if d.inUse > d.peak {
		d.peak = d.inUse
	}
	return b
}

// Free releases a buffer's slot back to the pool. The struct itself is
// dead afterwards (live=false) and is never reused.
func (d *DBA) Free(b *DataBuffer) {
	if !b.live {
		panic(fmt.Sprintf("aswitch: double free of buffer %d", b.id))
	}
	b.live = false
	b.payload = nil
	d.freeIDs = append(d.freeIDs, b.id)
	d.inUse--
	d.frees++
	if b.output {
		d.outputPermits.Release()
	} else {
		d.inputPermits.Release()
	}
}

// InUse reports how many buffers are currently held.
func (d *DBA) InUse() int { return d.inUse }

// Peak reports the high-water mark of held buffers.
func (d *DBA) Peak() int { return d.peak }

// Allocs reports total allocations.
func (d *DBA) Allocs() int64 { return d.allocs }
