package aswitch

import (
	"fmt"

	"activesan/internal/cache"
	"activesan/internal/cpu"
	"activesan/internal/memsys"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// Config assembles an active switch.
type Config struct {
	// Base is the conventional switch underneath (ports, routing latency,
	// central queue, links).
	Base san.SwitchConfig
	// NumCPUs is how many embedded switch processors to instantiate (the
	// paper's design supports up to four).
	NumCPUs int
	// NumBuffers is the data-buffer count (paper: 16 buffers of one MTU).
	NumBuffers int
	// OutReserve is how many buffers the DBA holds back for the send unit.
	OutReserve int
	// DispatchLatency is the hardware dispatch unit's per-packet time.
	DispatchLatency sim.Time
	// Mem configures the switch's local RDRAM channel.
	Mem memsys.Config
	// Quantum is the switch CPUs' accounting quantum (see package cpu).
	Quantum sim.Time
	// ValidLineBytes is the valid-bit granularity inside data buffers
	// (default 32 bytes — the switch D-cache line). Setting it to the MTU
	// degenerates to whole-packet validity, the ablation of the paper's
	// "cache line based valid bits" feature.
	ValidLineBytes int64
	// CPUClock overrides the embedded processors' clock (default 500 MHz).
	CPUClock sim.Clock
}

// DefaultConfig returns the paper's active switch: the base switch of
// DefaultSwitchConfig plus one 500 MHz CPU, sixteen 512-byte data buffers
// (two reserved for output staging), and a local RDRAM channel.
func DefaultConfig(ports int) Config {
	return Config{
		Base:            san.DefaultSwitchConfig(ports),
		NumCPUs:         1,
		NumBuffers:      16,
		OutReserve:      2,
		DispatchLatency: 8 * sim.Nanosecond,
		Mem:             memsys.DefaultConfig(),
		Quantum:         500 * sim.Nanosecond,
		ValidLineBytes:  ValidLineBytes,
		CPUClock:        sim.SwitchClock,
	}
}

func (c Config) validate() error {
	if c.NumCPUs < 1 || c.NumCPUs > 4 {
		return fmt.Errorf("aswitch: %d CPUs outside the design's 1..4", c.NumCPUs)
	}
	if c.NumBuffers <= c.OutReserve || c.OutReserve < 1 {
		return fmt.Errorf("aswitch: need OutReserve in [1, NumBuffers)")
	}
	return nil
}

// Invocation is one message-driven handler activation.
type Invocation struct {
	HandlerID int
	CPUID     int
	Src       san.NodeID
	BaseAddr  int64
	Flow      int64
	Args      any
}

// HandlerFunc is the code behind a jump-table entry. It runs on a switch
// CPU's process; all timing must flow through the Ctx methods.
type HandlerFunc func(x *Ctx)

type handlerEntry struct {
	name string
	fn   HandlerFunc
}

// Stats counts active-switch activity.
type Stats struct {
	PacketsAdmitted int64
	Invocations     int64
	MessagesSent    int64
	PacketsSent     int64
	BytesSent       int64
	Unregistered    int64
}

// CrashStats counts the active plane's failure events (all zero unless a
// fault plan crashes the switch).
type CrashStats struct {
	Crashes  int64
	Restarts int64
	// Aborted counts handler invocations killed mid-run by a crash.
	Aborted int64
	// Rejected counts invocations refused at dispatch while crashed.
	Rejected int64
	// DataDropped counts stream packets discarded while crashed.
	DataDropped int64
}

// CrashNotice is the Control payload the switch sends to an invoker when a
// crash kills (or refuses) its handler, so the host can fall back to the
// non-active program.
type CrashNotice struct {
	Handler int
	Flow    int64 // the invoking message's flow
}

// crashAbort is the panic sentinel Ctx methods raise when the handler's
// switch has crashed; the CPU loop recovers it and cleans up.
type crashAbort struct{ handler int }

// HandlerStats counts one jump-table entry's activity.
type HandlerStats struct {
	Invocations  int64
	MessagesSent int64
	BytesSent    int64
}

// ActiveSwitch is the paper's switch with the active hardware attached. It
// embeds the conventional switch, whose ports, routes and Start-up it
// shares; the crossbar is logically (N+1)xN via Inject.
type ActiveSwitch struct {
	*san.Switch
	eng *sim.Engine
	cfg Config

	mem   *memsys.RDRAM
	space *memsys.AddressSpace

	cpus   []*SwitchCPU
	dba    *DBA
	jump   [san.MaxHandlerID + 1]*handlerEntry
	states map[int]any

	// mapSig fires whenever an ATB mapping is installed or released, waking
	// dispatch processes waiting on slot conflicts and handlers waiting on
	// stream data.
	mapSig *sim.Signal

	rr         int
	flows      int64
	stats      Stats
	crashed    bool
	crash      CrashStats
	perHandler [san.MaxHandlerID + 1]HandlerStats

	// Telemetry hooks (nil = off): stamp mints records for switch-sourced
	// packets (handler Send/Forward), complete consumes records of packets
	// terminating at the active plane, handlerDone reports each handler
	// run's duration for per-handler histograms.
	stamp       san.Stamper
	complete    san.Completer
	handlerDone func(name string, dur sim.Time)
}

// New builds an active switch with the given node identity. Wire its ports
// and routes through the embedded san.Switch, register handlers, then call
// Start.
func New(eng *sim.Engine, id san.NodeID, name string, cfg Config) *ActiveSwitch {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	s := &ActiveSwitch{
		Switch: san.NewSwitch(eng, id, name, cfg.Base),
		eng:    eng,
		cfg:    cfg,
		mem:    memsys.New(eng, name+".mem", cfg.Mem),
		space:  memsys.NewAddressSpace(0, 1<<30),
		dba:    NewDBA(cfg.NumBuffers, cfg.OutReserve),
		states: make(map[int]any),
		mapSig: sim.NewSignal(),
	}
	if s.cfg.ValidLineBytes <= 0 {
		s.cfg.ValidLineBytes = ValidLineBytes
	}
	if s.cfg.CPUClock.Period <= 0 {
		s.cfg.CPUClock = sim.SwitchClock
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		hier := cache.NewHierarchy(eng, cache.SwitchHierConfig(), s.mem, 1<<40)
		c := &SwitchCPU{
			id:   i,
			sw:   s,
			cpu:  cpu.New(eng, fmt.Sprintf("%s.sp%d", name, i), s.cfg.CPUClock, hier, cfg.Quantum),
			atb:  NewATB(cfg.NumBuffers),
			invq: sim.NewQueue[*Invocation](),
		}
		s.cpus = append(s.cpus, c)
	}
	s.Switch.SetLocalSink(s)
	return s
}

// Config returns the active configuration.
func (s *ActiveSwitch) ActiveConfig() Config { return s.cfg }

// Mem returns the switch's local memory channel.
func (s *ActiveSwitch) Mem() *memsys.RDRAM { return s.mem }

// Space returns the switch's local address-space allocator, used to lay out
// handler state (e.g. HashJoin's bit-vector) at realistic addresses.
func (s *ActiveSwitch) Space() *memsys.AddressSpace { return s.space }

// CPUs returns the embedded processors.
func (s *ActiveSwitch) CPUs() []*SwitchCPU { return s.cpus }

// CPU returns processor i.
func (s *ActiveSwitch) CPU(i int) *SwitchCPU { return s.cpus[i] }

// DBA returns the buffer administrator.
func (s *ActiveSwitch) DBA() *DBA { return s.dba }

// ActiveStats returns a copy of the activity counters.
func (s *ActiveSwitch) ActiveStats() Stats { return s.stats }

// CrashStatsCopy returns a copy of the failure counters.
func (s *ActiveSwitch) CrashStatsCopy() CrashStats { return s.crash }

// Crashed reports whether the active plane is down.
func (s *ActiveSwitch) Crashed() bool { return s.crashed }

// SetTelemetry arms per-packet stamping on the active plane: stamp mints
// records for handler-sourced packets, complete consumes records of
// packets the switch terminates, handlerDone reports handler run times.
// Install before traffic flows.
func (s *ActiveSwitch) SetTelemetry(stamp san.Stamper, complete san.Completer, handlerDone func(name string, dur sim.Time)) {
	s.stamp = stamp
	s.complete = complete
	s.handlerDone = handlerDone
}

// Crash kills the active plane: running handlers abort at their next Ctx
// call, queued invocations are refused with a CrashNotice, and arriving
// stream data is discarded. The base switch keeps routing — exactly the
// paper's non-active degradation.
func (s *ActiveSwitch) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.crash.Crashes++
	if s.eng.Tracing() {
		s.eng.Emit("fault", "handler_crash", s.Name(), "active plane down")
	}
	// Wake handlers blocked on stream data so they observe the crash.
	s.mapSig.Fire()
}

// Restart brings the active plane back up. Stream state from before the
// crash is gone (the DBA and ATBs were scrubbed), so invokers must restart
// their messages from scratch.
func (s *ActiveSwitch) Restart() {
	if !s.crashed {
		return
	}
	s.crashed = false
	s.crash.Restarts++
	if s.eng.Tracing() {
		s.eng.Emit("fault", "handler_restart", s.Name(), "active plane up")
	}
	s.mapSig.Fire()
}

// notifyCrash tells an invoker its handler died, via a best-effort Control
// packet through the still-working base switch.
func (s *ActiveSwitch) notifyCrash(p *sim.Proc, dst san.NodeID, handler int, flow int64) {
	pkt := &san.Packet{
		Hdr: san.Header{
			Src: s.ID(), Dst: dst, Type: san.Control,
			Flow: s.NextFlow(), Last: true,
		},
		Size:    16,
		Payload: CrashNotice{Handler: handler, Flow: flow},
	}
	// An unroutable invoker means nobody to notify; drop the notice.
	_ = s.Inject(p, pkt)
}

// HandlerStatsFor returns the per-handler counters for a jump-table entry.
func (s *ActiveSwitch) HandlerStatsFor(id int) HandlerStats {
	if id < 0 || id > san.MaxHandlerID {
		return HandlerStats{}
	}
	return s.perHandler[id]
}

// HandlerInfo names one registered jump-table entry.
type HandlerInfo struct {
	ID   int
	Name string
}

// Handlers lists the registered jump-table entries in id order, so the
// metrics registry can key per-handler counters by name.
func (s *ActiveSwitch) Handlers() []HandlerInfo {
	var out []HandlerInfo
	for id, e := range s.jump {
		if e != nil {
			out = append(out, HandlerInfo{ID: id, Name: e.name})
		}
	}
	return out
}

// Register installs fn in the jump table at handler id.
func (s *ActiveSwitch) Register(id int, name string, fn HandlerFunc) {
	if id < 0 || id > san.MaxHandlerID {
		panic(fmt.Sprintf("aswitch: handler id %d outside 6-bit range", id))
	}
	if s.jump[id] != nil {
		panic(fmt.Sprintf("aswitch: handler id %d already registered (%s)", id, s.jump[id].name))
	}
	s.jump[id] = &handlerEntry{name: name, fn: fn}
}

// SetState attaches per-switch state for a handler id (the small run-time
// kernel's memory allocation on the handler's behalf).
func (s *ActiveSwitch) SetState(id int, state any) { s.states[id] = state }

// HandlerState returns the state attached to a handler id.
func (s *ActiveSwitch) HandlerState(id int) any { return s.states[id] }

// Start launches the base switch port processes and the switch CPUs.
func (s *ActiveSwitch) Start() {
	s.Switch.Start()
	for _, c := range s.cpus {
		c := c
		s.eng.Spawn(c.cpu.Name(), c.loop)
	}
}

// NextFlow hands out a fresh flow id for switch-originated messages.
func (s *ActiveSwitch) NextFlow() int64 {
	s.flows++
	return s.flows<<16 | int64(s.ID())&0xFFFF
}

// Deliver implements san.LocalSink: the dispatch unit. It admits the packet
// into a data buffer, maps it into the owning CPU's ATB, and — for the
// first packet of an active message — queues a handler invocation. It runs
// in the input port's process, so blocking here is the credit backpressure
// the paper relies on.
func (s *ActiveSwitch) Deliver(p *sim.Proc, pkt *san.Packet, fillRate float64) {
	var tstart sim.Time
	if pkt.Stamp != nil {
		tstart = p.Now()
	}
	p.Sleep(s.cfg.DispatchLatency)
	if s.crashed {
		// The active plane is down: refuse invocations (telling the invoker
		// why) and discard stream data. The input port returns the credit as
		// usual, so the fabric stays live around the dead handler plane.
		if pkt.Hdr.Type == san.ActiveMsg && pkt.Hdr.Seq == 0 {
			s.crash.Rejected++
			s.notifyCrash(p, pkt.Hdr.Src, pkt.Hdr.HandlerID, pkt.Hdr.Flow)
		} else if pkt.Size > 0 {
			s.crash.DataDropped++
		}
		return
	}
	cpuID := pkt.Hdr.CPUID
	if cpuID < 0 {
		if pkt.Hdr.Type == san.ActiveMsg && pkt.Hdr.Seq == 0 {
			cpuID = s.rr
			s.rr = (s.rr + 1) % len(s.cpus)
		} else {
			cpuID = 0
		}
	}
	if cpuID >= len(s.cpus) {
		cpuID = 0
	}
	c := s.cpus[cpuID]

	if pkt.Size > 0 {
		buf := s.dba.AllocInput(p)
		if s.crashed {
			// The crash landed while we blocked for a buffer: give it back
			// and discard, or the scrubbed DBA would leak this slot.
			s.dba.Free(buf)
			s.crash.DataDropped++
			return
		}
		buf.addr = pkt.Hdr.Addr
		buf.size = pkt.Size
		buf.fillStart = p.Now()
		buf.fillRate = fillRate
		buf.lineBytes = s.cfg.ValidLineBytes
		buf.last = pkt.Hdr.Last
		buf.payload = pkt.Payload
		for !c.atb.CanInstall(buf) {
			s.mapSig.Wait(p)
			if s.crashed {
				s.dba.Free(buf)
				s.crash.DataDropped++
				return
			}
		}
		c.atb.Install(buf)
		c.arrivals = append(c.arrivals, buf)
		s.stats.PacketsAdmitted++
	}

	if pkt.Hdr.Type == san.ActiveMsg && pkt.Hdr.Seq == 0 {
		inv := &Invocation{
			HandlerID: pkt.Hdr.HandlerID,
			CPUID:     cpuID,
			Src:       pkt.Hdr.Src,
			BaseAddr:  pkt.Hdr.Addr,
			Flow:      pkt.Hdr.Flow,
			Args:      pkt.Payload,
		}
		s.stats.Invocations++
		if inv.HandlerID >= 0 && inv.HandlerID <= san.MaxHandlerID {
			s.perHandler[inv.HandlerID].Invocations++
		}
		if s.eng.Tracing() {
			s.eng.Emit("handler", "dispatch", s.Name(),
				fmt.Sprintf("dispatch handler=%d cpu=%d src=%d", inv.HandlerID, cpuID, inv.Src))
		}
		c.invq.Put(inv)
	}
	if st := pkt.Stamp; st != nil && s.complete != nil {
		// The packet terminates here: dispatch plus data-buffer admission is
		// its active-plane hop; handler execution time is reported separately
		// through the handlerDone hook (it runs asynchronously on the switch
		// CPU, after this packet's life ends).
		st.Add(san.HopHandler, s.Name(), tstart, p.Now())
		s.complete(st, p.Now(), pkt.Hdr.Type)
	}
	s.mapSig.Fire()
}

// SwitchCPU is one embedded processor with its private ATB, caches and
// invocation queue.
type SwitchCPU struct {
	id  int
	sw  *ActiveSwitch
	cpu *cpu.CPU
	atb *ATB

	invq     *sim.Queue[*Invocation]
	arrivals []*DataBuffer

	runs int64
}

// ID returns the CPU index.
func (c *SwitchCPU) ID() int { return c.id }

// Timing returns the processor's timing model (busy/stall accounting).
func (c *SwitchCPU) Timing() *cpu.CPU { return c.cpu }

// ATB returns the CPU's translation buffer.
func (c *SwitchCPU) ATB() *ATB { return c.atb }

// Runs reports how many handler invocations this CPU has executed.
func (c *SwitchCPU) Runs() int64 { return c.runs }

// PendingArrivals reports live, unconsumed mapped buffers (diagnostics).
func (c *SwitchCPU) PendingArrivals() int {
	n := 0
	for _, b := range c.arrivals {
		if b.live && !b.consumed {
			n++
		}
	}
	return n
}

// invokeCycles is the dispatch-to-first-instruction cost of starting a
// handler (jump table read, register setup).
const invokeCycles = 16

func (c *SwitchCPU) loop(p *sim.Proc) {
	for {
		inv := c.invq.Get(p)
		if c.sw.crashed {
			// Queued before the crash landed: refuse it like dispatch would.
			c.sw.crash.Rejected++
			c.sw.notifyCrash(p, inv.Src, inv.HandlerID, inv.Flow)
			continue
		}
		entry := c.sw.jump[inv.HandlerID]
		if entry == nil {
			c.sw.stats.Unregistered++
			continue
		}
		c.runs++
		eng := c.sw.eng
		if eng.Tracing() {
			eng.Emit("handler", "invoke", c.sw.Name(),
				fmt.Sprintf("cpu%d invoke %q", c.id, entry.name))
		}
		start := p.Now()
		c.cpu.Compute(p, invokeCycles)
		if crashed := c.runInvocation(p, entry, inv); crashed {
			c.cleanupCrash(p, inv)
			continue
		}
		c.cpu.Flush(p)
		if fn := c.sw.handlerDone; fn != nil {
			fn(entry.name, p.Now()-start)
		}
		if eng.Tracing() {
			eng.Emit("handler", "retire", c.sw.Name(),
				fmt.Sprintf("cpu%d retire %q after %v", c.id, entry.name, p.Now()-start))
		}
	}
}

// runInvocation executes the handler, converting a crashAbort panic — raised
// by Ctx methods when the switch crashes mid-run — into a flag. Any other
// panic keeps propagating: handler bugs must stay loud.
func (c *SwitchCPU) runInvocation(p *sim.Proc, entry *handlerEntry, inv *Invocation) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashAbort); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	entry.fn(&Ctx{p: p, sw: c.sw, c: c, inv: inv})
	return false
}

// cleanupCrash scrubs the CPU's stream state after an aborted handler: every
// mapped buffer is released back to the DBA, the arrival list is emptied,
// and the invoker learns its stream died.
func (c *SwitchCPU) cleanupCrash(p *sim.Proc, inv *Invocation) {
	c.sw.crash.Aborted++
	for _, buf := range c.atb.ReleaseBelow(1 << 62) {
		c.sw.dba.Free(buf)
	}
	c.arrivals = c.arrivals[:0]
	c.sw.mapSig.Fire()
	c.cpu.Flush(p)
	if c.sw.eng.Tracing() {
		c.sw.eng.Emit("fault", "handler_abort", c.sw.Name(),
			fmt.Sprintf("cpu%d handler=%d aborted by crash", c.id, inv.HandlerID))
	}
	c.sw.notifyCrash(p, inv.Src, inv.HandlerID, inv.Flow)
}

// pruneArrivals drops consumed/freed buffers from the head of the arrival
// list so streaming handlers do not accumulate it.
func (c *SwitchCPU) pruneArrivals() {
	i := 0
	for i < len(c.arrivals) && (!c.arrivals[i].live || c.arrivals[i].consumed) {
		i++
	}
	if i > 0 {
		c.arrivals = c.arrivals[i:]
	}
}
