// The tests live in an external package so they can drive real workloads
// through internal/apps — the apps harness imports telemetry, so an
// internal test package would be an import cycle.
package telemetry_test

import (
	"fmt"
	"strings"
	"testing"

	"activesan/internal/apps"
	"activesan/internal/apps/mpeg"
	"activesan/internal/fault"
	"activesan/internal/metrics"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/telemetry"
)

// smallMPEG shrinks the workload so telemetry tests stay fast.
func smallMPEG() mpeg.Params {
	prm := mpeg.DefaultParams()
	prm.FileSize = 256 * 1024
	return prm
}

func TestTelemetryOffLeavesNoTrace(t *testing.T) {
	telemetry.SetDefault(false)
	run := mpeg.Run(apps.Active, smallMPEG())
	for name := range run.Metrics.Values {
		if strings.HasPrefix(name, "telemetry/") {
			t.Fatalf("telemetry off, but snapshot holds %s", name)
		}
	}
}

func TestTelemetryHistogramsPopulate(t *testing.T) {
	telemetry.SetDefault(true)
	defer telemetry.SetDefault(false)
	run := mpeg.Run(apps.Active, smallMPEG())
	m := run.Metrics
	if m.Get("telemetry/stamped") == 0 || m.Get("telemetry/completed") == 0 {
		t.Fatalf("stamped=%g completed=%g, want both > 0",
			m.Get("telemetry/stamped"), m.Get("telemetry/completed"))
	}
	if m.Get("telemetry/completed") > m.Get("telemetry/stamped") {
		t.Fatalf("completed %g > stamped %g", m.Get("telemetry/completed"), m.Get("telemetry/stamped"))
	}
	for _, name := range []string{
		"telemetry/e2e/count", "telemetry/e2e/p50", "telemetry/e2e/p99", "telemetry/e2e/p999",
		"telemetry/hop/wire/count", "telemetry/hop/route/count",
	} {
		if m.Get(name) == 0 && name != "telemetry/e2e/p50" {
			t.Errorf("%s = 0, want > 0", name)
		}
	}
	// Quantiles are ordered.
	if !(m.Get("telemetry/e2e/p50") <= m.Get("telemetry/e2e/p99") &&
		m.Get("telemetry/e2e/p99") <= m.Get("telemetry/e2e/p999") &&
		m.Get("telemetry/e2e/p999") <= m.Get("telemetry/e2e/max")) {
		t.Fatalf("quantiles out of order: p50=%g p99=%g p999=%g max=%g",
			m.Get("telemetry/e2e/p50"), m.Get("telemetry/e2e/p99"),
			m.Get("telemetry/e2e/p999"), m.Get("telemetry/e2e/max"))
	}
	// The active run consumed data packets on the switch: a handler path
	// breakdown and per-handler execution histogram must exist.
	if m.Get("telemetry/path/active/packets") == 0 {
		t.Error("no active-message path breakdown")
	}
	if m.Get("telemetry/handler/mpeg-filter/count") == 0 {
		t.Error("no mpeg-filter handler histogram")
	}
	// Watermarks for every component class.
	found := 0
	for name := range m.Values {
		if strings.HasPrefix(name, "telemetry/wm/") {
			found++
		}
	}
	if found == 0 {
		t.Error("no telemetry/wm/ watermarks")
	}
}

func TestTelemetryDeterministicAcrossRuns(t *testing.T) {
	telemetry.SetDefault(true)
	defer telemetry.SetDefault(false)
	a := mpeg.Run(apps.ActivePref, smallMPEG())
	b := mpeg.Run(apps.ActivePref, smallMPEG())
	for name, va := range a.Metrics.Values {
		if !strings.HasPrefix(name, "telemetry/") {
			continue
		}
		if vb := b.Metrics.Get(name); vb != va {
			t.Fatalf("%s: %g vs %g across identical runs", name, va, vb)
		}
	}
}

// crashPlan schedules a handler crash early in the run.
func crashPlan() *fault.Plan {
	return &fault.Plan{Events: []fault.Event{{AtNS: 50_000, Kind: fault.HandlerCrash, Switch: 0}}}
}

func TestFlightRecorderTriggersOnHandlerCrash(t *testing.T) {
	fr := telemetry.NewFlightRecorder(0)
	sim.SetDefaultTraceSink(fr.Sink(nil))
	defer sim.SetDefaultTraceSink(nil)

	run, _ := mpeg.RunFaulted(apps.Active, smallMPEG(), crashPlan(), 1)
	if run.Extra["fallback"] != true {
		t.Fatalf("crash plan did not force the host fallback: Extra=%v", run.Extra)
	}
	if !fr.Triggered() {
		t.Fatal("flight recorder not triggered by handler_crash")
	}
	dump := fr.Dump()
	if !strings.Contains(dump, "handler_crash") {
		t.Fatalf("dump lacks the crash event:\n%s", dump)
	}
	if !strings.Contains(dump, "trigger[0]: fault: handler_crash") {
		t.Fatalf("dump lacks the trigger line:\n%s", dump)
	}
	// Bounded: each component section holds at most DefaultRingSize events.
	for _, line := range strings.Split(dump, "\n") {
		open := strings.LastIndex(line, "(last ")
		if !strings.HasPrefix(line, "== ") || open < 0 {
			continue
		}
		var kept, total int
		if _, err := fmt.Sscanf(line[open:], "(last %d of %d events)", &kept, &total); err != nil {
			t.Fatalf("unparseable ring header %q: %v", line, err)
		}
		if kept > telemetry.DefaultRingSize || kept > total {
			t.Fatalf("ring overflow: %s", line)
		}
	}
}

func TestFlightRecorderDumpDeterministic(t *testing.T) {
	dumps := make([]string, 2)
	for i := range dumps {
		fr := telemetry.NewFlightRecorder(0)
		sim.SetDefaultTraceSink(fr.Sink(nil))
		mpeg.RunFaulted(apps.Active, smallMPEG(), crashPlan(), 1)
		sim.SetDefaultTraceSink(nil)
		dumps[i] = fr.Dump()
	}
	if dumps[0] != dumps[1] {
		t.Fatalf("dumps differ across identical crashed runs:\n--- a\n%s\n--- b\n%s", dumps[0], dumps[1])
	}
}

func TestFlightRecorderTeesToNext(t *testing.T) {
	fr := telemetry.NewFlightRecorder(4)
	var forwarded []sim.TraceEvent
	sink := fr.Sink(func(ev sim.TraceEvent) { forwarded = append(forwarded, ev) })
	for i := 0; i < 10; i++ {
		sink(sim.TraceEvent{At: sim.Time(i), Cat: "c", Name: "n", Comp: "x"})
	}
	if len(forwarded) != 10 {
		t.Fatalf("forwarded %d events, want all 10", len(forwarded))
	}
	if fr.Triggered() {
		t.Fatal("benign events triggered the recorder")
	}
	dump := fr.Dump()
	if !strings.Contains(dump, "last 4 of 10 events") {
		t.Fatalf("ring not bounded at 4:\n%s", dump)
	}
	// The ring keeps the newest events, oldest first.
	if !strings.Contains(dump, "trigger: none") {
		t.Fatalf("untriggered dump lacks the explicit marker:\n%s", dump)
	}
}

func TestFlightRecorderStrictRoutesTrigger(t *testing.T) {
	fr := telemetry.NewFlightRecorder(0)
	sink := fr.Sink(nil)
	// Without -strict-routes a no_route_drop is informational.
	sink(sim.TraceEvent{Cat: "fault", Name: "no_route_drop", Comp: "sw0"})
	if fr.Triggered() {
		t.Fatal("no_route_drop triggered without -strict-routes")
	}
	san.SetStrictRoutes(true)
	defer san.SetStrictRoutes(false)
	sink(sim.TraceEvent{Cat: "fault", Name: "no_route_drop", Comp: "sw0", Detail: "dst=7"})
	if !fr.Triggered() {
		t.Fatal("no_route_drop did not trigger under -strict-routes")
	}
	if dump := fr.Dump(); !strings.Contains(dump, "strict-routes") {
		t.Fatalf("dump lacks strict-routes trigger:\n%s", dump)
	}
}

func TestRecorderSkipsAbandonedHops(t *testing.T) {
	// A hop opened but never closed (packet dropped mid-queue) has End <
	// Start; completion must skip it rather than observe a negative
	// duration.
	rec := telemetry.NewRecorder()
	complete := rec.Completer()
	st := &san.Stamp{Origin: 100}
	st.Add(san.HopWire, "l0", 100, 200)
	st.Open(san.HopQueue, "sw0", 200) // never closed: End stays 0 < Start
	complete(st, 300, san.Data)
	s := metrics.NewSnapshot()
	rec.Into(s)
	if got := s.Get("telemetry/hop/wire/count"); got != 1 {
		t.Fatalf("wire count = %g, want 1", got)
	}
	if got := s.Get("telemetry/hop/queue/count"); got != 0 {
		t.Fatalf("abandoned queue hop counted: %g", got)
	}
	if got := s.Get("telemetry/e2e/count"); got != 1 {
		t.Fatalf("e2e count = %g, want 1", got)
	}
}
