// Package telemetry is the per-packet observability layer: packets carry
// an in-band stamp record (san.Stamp) that every data-path stage appends
// per-hop entries to — NIC enqueue, wire transit, switch route/queue time,
// active-handler execution, storage-node service — and a Recorder completes
// finished stamps into deterministic log-bucketed latency histograms
// (metrics.Hist), per-flow path breakdowns, and component queue
// high-watermarks. See OBSERVABILITY.md for the stamp format and the
// zero-overhead-when-off contract: with telemetry off no stamp is ever
// minted, so the data path pays exactly one nil pointer test per stage.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"activesan/internal/cluster"
	"activesan/internal/metrics"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// defaultOn is the process-wide telemetry switch, set by the -telemetry
// flag. MaybeAttach consults it so every harness entry point (activesim,
// sansweep, apps.RunIOWith) arms recorders with one line.
var defaultOn atomic.Bool

// SetDefault arms (or disarms) telemetry for subsequently built clusters.
func SetDefault(on bool) { defaultOn.Store(on) }

// Default reports whether telemetry is armed process-wide.
func Default() bool { return defaultOn.Load() }

// spanWriter, when set, receives one Perfetto duration span per completed
// hop (reusing the chrometrace writer installed for -trace-out).
var spanWriter atomic.Pointer[metrics.ChromeTraceWriter]

// SetDefaultSpanWriter installs (or clears, with nil) the writer that
// receives per-hop spans from every recorder in the process.
func SetDefaultSpanWriter(w *metrics.ChromeTraceWriter) {
	if w == nil {
		spanWriter.Store(nil)
		return
	}
	spanWriter.Store(w)
}

// numTypes bounds the per-packet-type aggregate arrays.
const numTypes = int(san.Ack) + 1

// pathAccum is one packet type's per-flow latency decomposition: total
// picoseconds spent in each hop kind, over how many completed packets.
type pathAccum struct {
	packets int64
	ps      [san.NumHopKinds]int64
}

// Recorder collects one cluster's telemetry. A mutex guards the hook
// paths: a partitioned cluster runs one engine per partition on parallel
// goroutines during barrier windows, so a single recorder spanning all
// ranks sees genuinely concurrent stamps and completions. Every recorder
// operation commutes — counter adds, histogram bucket increments, keyed
// map inserts — so the interleaving the lock serializes does not affect
// the folded snapshot: Into stays byte-identical at any partition or
// worker count. Accessors (Stamped, E2E, Into, ...) read without the
// lock and must only be called once the simulation has quiesced.
type Recorder struct {
	c  *cluster.Cluster
	mu sync.Mutex

	stamped   int64
	completed int64

	e2e    *metrics.Hist
	byType [numTypes]*metrics.Hist
	hop    [san.NumHopKinds]*metrics.Hist
	path   [numTypes]pathAccum

	handlers map[string]*metrics.Hist
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{e2e: metrics.NewHist(), handlers: make(map[string]*metrics.Hist)}
}

// MaybeAttach arms telemetry on c when the process-wide default is on,
// returning the recorder — or nil, which callers treat as "off".
func MaybeAttach(c *cluster.Cluster) *Recorder {
	if !Default() {
		return nil
	}
	r := NewRecorder()
	r.Attach(c)
	return r
}

// Attach installs the recorder's hooks on every stamping component in c:
// host NICs mint stamps and complete them at delivery, storage nodes stamp
// disk-originated data, active switches complete handler-consumed packets
// and report handler execution time. Call before the workload runs.
func (r *Recorder) Attach(c *cluster.Cluster) {
	r.c = c
	stamp, complete := r.Stamper(), r.Completer()
	for _, h := range c.Hosts {
		h.NIC().SetTelemetry(stamp, complete)
	}
	for _, s := range c.Stores {
		s.SetTelemetry(stamp, complete)
	}
	for _, sw := range c.Switches {
		sw.SetTelemetry(stamp, complete, r.HandlerDone)
	}
}

// Stamper returns the mint hook: one fresh stamp per packet entering the
// fabric.
func (r *Recorder) Stamper() san.Stamper {
	return func(origin sim.Time) *san.Stamp {
		r.mu.Lock()
		r.stamped++
		r.mu.Unlock()
		return &san.Stamp{Origin: origin}
	}
}

// Completer returns the delivery hook folding a finished stamp into the
// histograms. Hops with End < Start (opened but abandoned on a drop path)
// are skipped.
func (r *Recorder) Completer() san.Completer {
	return func(st *san.Stamp, done sim.Time, typ san.Type) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.completed++
		e2e := int64(done - st.Origin)
		r.e2e.Observe(e2e)
		ti := int(typ)
		if ti >= numTypes {
			ti = numTypes - 1
		}
		if r.byType[ti] == nil {
			r.byType[ti] = metrics.NewHist()
		}
		r.byType[ti].Observe(e2e)
		r.path[ti].packets++
		w := spanWriter.Load()
		for _, h := range st.Hops {
			if h.End < h.Start {
				continue
			}
			d := h.End - h.Start
			if r.hop[h.Kind] == nil {
				r.hop[h.Kind] = metrics.NewHist()
			}
			r.hop[h.Kind].Observe(int64(d))
			r.path[ti].ps[h.Kind] += int64(d)
			if w != nil {
				w.Span(h.Comp, h.Kind.String(), "telemetry", h.Start, d)
			}
		}
	}
}

// HandlerDone records one active-handler execution. Handler cycles run
// asynchronously on the switch CPU after the triggering packet's life ends,
// so they land in per-handler histograms rather than on the packet's stamp.
func (r *Recorder) HandlerDone(name string, dur sim.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.handlers[name]
	if h == nil {
		h = metrics.NewHist()
		r.handlers[name] = h
	}
	h.Observe(int64(dur))
}

// Stamped reports how many stamps were minted.
func (r *Recorder) Stamped() int64 { return r.stamped }

// Completed reports how many stamped packets reached a final delivery.
// Packets that die en route (drops, crash discards) mint but never
// complete; the gap is itself a loss signal.
func (r *Recorder) Completed() int64 { return r.completed }

// E2E returns the end-to-end latency histogram (picoseconds).
func (r *Recorder) E2E() *metrics.Hist { return r.e2e }

// Path returns type typ's per-flow decomposition: completed packets and
// total picoseconds per hop kind.
func (r *Recorder) Path(typ san.Type) (packets int64, ps [san.NumHopKinds]int64) {
	ti := int(typ)
	if ti >= numTypes {
		return 0, ps
	}
	return r.path[ti].packets, r.path[ti].ps
}

// Into folds everything into a snapshot under the telemetry/ prefix. All
// values are exact integer counts or deterministic bucket bounds, so
// goldens embedding them are byte-identical at any worker count.
func (r *Recorder) Into(s *metrics.Snapshot) {
	s.SetInt("telemetry/stamped", r.stamped)
	s.SetInt("telemetry/completed", r.completed)
	r.e2e.Into(s, "telemetry/e2e")
	for ti := 0; ti < numTypes; ti++ {
		if h := r.byType[ti]; h != nil {
			h.Into(s, "telemetry/type/"+san.Type(ti).String())
		}
		if p := &r.path[ti]; p.packets > 0 {
			prefix := "telemetry/path/" + san.Type(ti).String()
			s.SetInt(prefix+"/packets", p.packets)
			for k := san.HopKind(0); k < san.NumHopKinds; k++ {
				if p.ps[k] > 0 {
					s.SetInt(prefix+"/"+k.String()+"_ps", p.ps[k])
				}
			}
		}
	}
	for k := san.HopKind(0); k < san.NumHopKinds; k++ {
		if h := r.hop[k]; h != nil {
			h.Into(s, "telemetry/hop/"+k.String())
		}
	}
	names := make([]string, 0, len(r.handlers))
	for n := range r.handlers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.handlers[n].Into(s, "telemetry/handler/"+n)
	}
	r.watermarks(s)
}

// watermarks emits the per-component occupancy high-water gauges under
// telemetry/wm/. These live here, not in the base collector, so the
// telemetry-off snapshot namespace is untouched.
func (r *Recorder) watermarks(s *metrics.Snapshot) {
	if r.c == nil {
		return
	}
	for _, h := range r.c.Hosts {
		s.SetInt("telemetry/wm/"+h.Name()+"/nic_txq_max", int64(h.NIC().MaxTxQueue()))
	}
	for _, st := range r.c.Stores {
		s.SetInt("telemetry/wm/"+st.Name()+"/req_queue_max", int64(st.MaxQueuedReqs()))
	}
	for _, sw := range r.c.Switches {
		stats := sw.Stats()
		s.SetInt("telemetry/wm/"+sw.Name()+"/queue_depth_max", int64(stats.MaxQueueDepth))
		s.SetInt("telemetry/wm/"+sw.Name()+"/pool_free_min", int64(stats.MinPoolFree))
		credits := -1
		for i := 0; i < sw.Config().Ports; i++ {
			port := sw.Port(i)
			for _, l := range []*san.Link{port.In, port.Out} {
				if l == nil {
					continue
				}
				if m := l.MinCredits(); credits < 0 || m < credits {
					credits = m
				}
			}
		}
		if credits >= 0 {
			s.SetInt("telemetry/wm/"+sw.Name()+"/credits_min", int64(credits))
		}
	}
}
