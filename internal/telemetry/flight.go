package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"activesan/internal/san"
	"activesan/internal/sim"
)

// DefaultRingSize is the per-component flight-recorder depth: enough to
// see the events leading into a crash without retaining a full trace.
const DefaultRingSize = 32

// maxTriggers bounds the recorded trigger list (a strict-routes storm
// could otherwise grow it without limit).
const maxTriggers = 16

// evRing is one component's fixed-size ring of recent trace events.
type evRing struct {
	ev    []sim.TraceEvent
	next  int
	total int64
}

func (r *evRing) add(ev sim.TraceEvent) {
	if len(r.ev) < cap(r.ev) {
		r.ev = append(r.ev, ev)
	} else {
		r.ev[r.next] = ev
	}
	r.next = (r.next + 1) % cap(r.ev)
	r.total++
}

// FlightRecorder keeps a fixed-size ring of recent trace events per
// component and arms itself when a crash-class event passes through:
// a fault-plan handler crash always, a no-route drop when -strict-routes
// is set (the drop event is emitted before the fail-fast panic), or an
// explicit Trigger from a recovered invariant panic. Dump renders the
// rings as a bounded, deterministic report — the last thing each
// component did before the crash — so faultsweep debugging does not
// require a full trace file.
//
// The recorder locks internally: parallel sweep workers all tee into one
// instance.
type FlightRecorder struct {
	mu       sync.Mutex
	size     int
	rings    map[string]*evRing
	triggers []string
	dropped  int
}

// NewFlightRecorder returns a recorder keeping size events per component
// (<= 0 selects DefaultRingSize).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &FlightRecorder{size: size, rings: make(map[string]*evRing)}
}

// Sink returns a trace sink that records every event into the rings, arms
// the recorder on crash-class events, and then forwards to next (which may
// be nil). Install it with sim.SetDefaultTraceSink so every engine —
// including parallel sweep workers' — feeds the same recorder.
func (f *FlightRecorder) Sink(next sim.TraceSink) sim.TraceSink {
	return func(ev sim.TraceEvent) {
		f.record(ev)
		if next != nil {
			next(ev)
		}
	}
}

func (f *FlightRecorder) record(ev sim.TraceEvent) {
	f.mu.Lock()
	comp := ev.Comp
	if comp == "" {
		comp = "sim"
	}
	r := f.rings[comp]
	if r == nil {
		r = &evRing{ev: make([]sim.TraceEvent, 0, f.size)}
		f.rings[comp] = r
	}
	r.add(ev)
	trigger := ""
	if ev.Cat == "fault" {
		switch {
		case ev.Name == "handler_crash":
			trigger = fmt.Sprintf("fault: handler_crash on %s at %v", comp, ev.At)
		case ev.Name == "no_route_drop" && san.StrictRoutes():
			trigger = fmt.Sprintf("strict-routes: no_route_drop on %s at %v (%s)", comp, ev.At, ev.Detail)
		}
	}
	if trigger != "" {
		f.addTriggerLocked(trigger)
	}
	f.mu.Unlock()
}

// Trigger arms the recorder with an explicit reason — the hook for
// recovered invariant panics in the CLI harness.
func (f *FlightRecorder) Trigger(reason string) {
	f.mu.Lock()
	f.addTriggerLocked(reason)
	f.mu.Unlock()
}

func (f *FlightRecorder) addTriggerLocked(reason string) {
	if len(f.triggers) >= maxTriggers {
		f.dropped++
		return
	}
	f.triggers = append(f.triggers, reason)
}

// Triggered reports whether any crash-class event armed the recorder.
func (f *FlightRecorder) Triggered() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.triggers) > 0
}

// Dump renders the report: the trigger list, then each component's ring
// oldest-first. Components sort by name and every line is derived from
// simulated state only, so the dump is deterministic for a deterministic
// run.
func (f *FlightRecorder) Dump() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var b strings.Builder
	b.WriteString("=== flight recorder dump ===\n")
	if len(f.triggers) == 0 {
		b.WriteString("trigger: none (dump requested explicitly)\n")
	}
	for i, t := range f.triggers {
		fmt.Fprintf(&b, "trigger[%d]: %s\n", i, t)
	}
	if f.dropped > 0 {
		fmt.Fprintf(&b, "(%d further triggers dropped)\n", f.dropped)
	}
	comps := make([]string, 0, len(f.rings))
	for c := range f.rings {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		r := f.rings[c]
		fmt.Fprintf(&b, "\n== %s (last %d of %d events)\n", c, len(r.ev), r.total)
		n := len(r.ev)
		for i := 0; i < n; i++ {
			// Oldest first: when the ring has wrapped, next points at the
			// oldest slot.
			idx := i
			if n == cap(r.ev) {
				idx = (r.next + i) % n
			}
			ev := r.ev[idx]
			fmt.Fprintf(&b, "  %-14v [%s] %s: %s\n", ev.At, ev.Cat, ev.Name, ev.Detail)
		}
	}
	return b.String()
}
