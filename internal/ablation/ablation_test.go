package ablation

import (
	"strings"
	"testing"
)

func TestInterferenceDesignGoal1(t *testing.T) {
	// The paper's first design goal: active switches must not degrade
	// non-active messages. The separate data buffers and the (N+1)th
	// crossbar port mean host-to-host traffic shares nothing with handler
	// streams, so degradation must be negligible.
	r := Interference()
	if r.Baseline <= 0 || r.WithActive <= 0 {
		t.Fatalf("throughputs = %v / %v", r.Baseline, r.WithActive)
	}
	if d := r.Degradation(); d > 0.02 {
		t.Fatalf("active load degrades non-active throughput by %.1f%%", 100*d)
	}
	if r.WithActiveLat > r.BaselineLat*11/10 {
		t.Fatalf("latency grew from %v to %v under active load", r.BaselineLat, r.WithActiveLat)
	}
}

func TestBufferCountFewSuffice(t *testing.T) {
	// The paper: "only a limited number of data buffers are needed" for
	// streaming handlers. Throughput with 4 buffers should already be
	// within a few percent of 32.
	pts := BufferCount([]int{4, 32})
	small, big := pts[0].Bytes, pts[1].Bytes
	if small < 0.95*big {
		t.Fatalf("4 buffers reach %.1f MB/s vs %.1f with 32 — streaming should need few",
			small/1e6, big/1e6)
	}
}

func TestValidBitsFinerIsFaster(t *testing.T) {
	fine, coarse := ValidBitGranularity()
	if fine >= coarse {
		t.Fatalf("32-byte valid bits (%v) not faster than whole-packet (%v)", fine, coarse)
	}
}

func TestOutReserveDoesNotStarve(t *testing.T) {
	// Even a single reserved output buffer must let a send-heavy handler
	// make progress (no deadlock, comparable throughput).
	pts := OutReserve([]int{1, 4})
	if pts[0].Bytes <= 0 {
		t.Fatal("reserve=1 starved the handler")
	}
	if pts[0].Bytes < 0.9*pts[1].Bytes {
		t.Fatalf("reserve=1 (%.1f MB/s) far below reserve=4 (%.1f MB/s)",
			pts[0].Bytes/1e6, pts[1].Bytes/1e6)
	}
}

func TestCPUClockScalesComputeBoundFilter(t *testing.T) {
	pts := CPUClock([]int{250, 500, 1000})
	if !(pts[0].Bytes < pts[1].Bytes && pts[1].Bytes < pts[2].Bytes) {
		t.Fatalf("throughput not monotone in clock: %v", pts)
	}
	// At 250 MHz the 8-cycle/byte filter caps at ~31 MB/s; check the
	// compute bound is what we hit (within 15%).
	cap250 := 250e6 / 8
	if pts[0].Bytes > cap250 || pts[0].Bytes < 0.8*cap250 {
		t.Fatalf("250 MHz throughput %.1f MB/s, want near the %.1f MB/s compute bound",
			pts[0].Bytes/1e6, cap250/1e6)
	}
}

func TestReportRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation report is slow")
	}
	rep := Report()
	for _, want := range []string{"design goal 1", "valid-bit", "switch CPU clock"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestUtilTimeline(t *testing.T) {
	tl := UtilTimeline()
	if n := len(tl.X); n < 10 {
		t.Fatalf("timeline has %d samples", n)
	}
	// Utilization climbs from the seek-dominated start toward the
	// steady-state streaming value.
	if tl.Y[len(tl.Y)-1] <= tl.Y[0] {
		t.Fatalf("utilization did not rise: first %.3f last %.3f", tl.Y[0], tl.Y[len(tl.Y)-1])
	}
	for _, u := range tl.Y {
		if u < 0 || u > 1.01 {
			t.Fatalf("utilization %v out of range", u)
		}
	}
}

func TestFilterPlacementSavesTrunkBandwidth(t *testing.T) {
	pl := FilterPlacement()
	if pl.StorageSide <= 0 || pl.HostSide <= 0 {
		t.Fatalf("placement bytes = %+v", pl)
	}
	// A 25% filter before the trunk should cut trunk traffic to ~1/4 of
	// the host-side placement.
	ratio := float64(pl.StorageSide) / float64(pl.HostSide)
	if ratio < 0.2 || ratio > 0.35 {
		t.Fatalf("trunk ratio = %.3f, want ~0.25 (%d vs %d)", ratio, pl.StorageSide, pl.HostSide)
	}
}

func TestRequestSizeCutsHostUtil(t *testing.T) {
	pts := RequestSize([]int64{64 * 1024, 1 << 20})
	small, big := pts[0].Bytes/1e6, pts[1].Bytes/1e6
	if !(big < small/4) {
		t.Fatalf("1MB requests (util %.4f) should cut 64KB-request util (%.4f) by >4x", big, small)
	}
}
