// Package ablation studies the active switch's design choices in isolation
// — the claims DESIGN.md calls out beyond the paper's headline figures:
//
//   - Design goal 1 (Section 2): "the presence of active switches should
//     not degrade the performance of non-active messages" — measured as
//     host-to-host throughput and latency with and without a concurrently
//     saturated switch handler.
//   - Data-buffer count (the paper picks 16): streaming throughput versus
//     pool size.
//   - Per-line valid bits (the paper calls them "crucial"): message
//     latency with 32-byte lines versus whole-packet validity.
//   - Send-unit reserve: a send-heavy handler versus the DBA's output
//     reservation.
//   - Switch CPU clock: where the host/switch partition stops paying off.
package ablation

import (
	"fmt"
	"strings"

	"activesan/internal/aswitch"
	"activesan/internal/cluster"
	"activesan/internal/host"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// streamHandler registers a handler that consumes `total` bytes mapped at
// base, charging `cycPerByte`, forwarding a fraction to fwdDst when
// keepNum/keepDen > 0, and firing done when finished.
func streamHandler(sw *aswitch.ActiveSwitch, id int, base, total int64,
	cycPerByte int64, fwdDst san.NodeID, keepNum, keepDen int64, done *sim.Latch) {
	sw.Register(id, "ablation-stream", func(x *aswitch.Ctx) {
		x.ReleaseArgs()
		cursor := base
		end := base + total
		var kept, seen int64
		for cursor < end {
			b := x.WaitStream(cursor)
			x.ReadAll(b)
			if cycPerByte > 0 {
				x.Compute(cycPerByte * b.Size())
			}
			seen += b.Size()
			if keepDen > 0 && fwdDst != san.NoNode {
				kept += b.Size() * keepNum / keepDen
				if kept >= 32*1024 {
					x.Send(aswitch.SendSpec{
						Dst: fwdDst, Type: san.Data, Addr: 0x0300_0000,
						Size: kept, Flow: 0x7100,
					})
					kept = 0
				}
			}
			cursor = b.End()
			x.Deallocate(cursor)
		}
		if kept > 0 && fwdDst != san.NoNode {
			x.Send(aswitch.SendSpec{
				Dst: fwdDst, Type: san.Data, Addr: 0x0300_0000,
				Size: kept, Flow: 0x7100,
			})
		}
		done.Open()
	})
}

// InterferenceResult reports design goal 1.
type InterferenceResult struct {
	// Baseline is host0->host1 bulk throughput (bytes/sec) with the switch
	// CPU idle; WithActive is the same while a handler consumes a full
	// disk stream.
	Baseline, WithActive float64
	// BaselineLat and WithActiveLat are mean small-message delivery times.
	BaselineLat, WithActiveLat sim.Time
}

// Degradation returns the throughput loss fraction (0 = none).
func (r InterferenceResult) Degradation() float64 {
	if r.Baseline == 0 {
		return 0
	}
	return 1 - r.WithActive/r.Baseline
}

// Interference measures non-active traffic with and without active load.
func Interference() InterferenceResult {
	run := func(active bool) (float64, sim.Time) {
		eng := sim.NewEngine()
		ccfg := cluster.DefaultIOClusterConfig()
		ccfg.Hosts = 3
		c := cluster.NewIOCluster(eng, ccfg)
		const bulk = 8 << 20
		const streamLen = 8 << 20
		c.Store(0).AddFile(&iodev.File{Name: "bg", Size: streamLen})
		sw := c.Switch(0)
		done := sim.NewLatch()
		if active {
			streamHandler(sw, 1, 0x0010_0000, streamLen, 8, san.NoNode, 0, 0, done)
		}
		c.Start()

		h0, h1, h2 := c.Host(0), c.Host(1), c.Host(2)
		var thr float64
		var latSum sim.Time
		var latN int64
		var wg sim.WaitGroup
		wg.Add(2)

		// Non-active workload: bulk stream + spaced latency probes.
		eng.Spawn("bulk", func(p *sim.Proc) {
			defer wg.Done()
			start := p.Now()
			for off := int64(0); off < bulk; off += 64 * 1024 {
				l := h0.SendMessage(p, &san.Message{
					Hdr:  san.Header{Dst: h1.ID(), Type: san.Data, Addr: 0x1000, Flow: 0x100},
					Size: 64 * 1024,
				}, 0)
				l.Wait(p)
			}
			thr = float64(bulk) / (p.Now() - start).Seconds()
			// Latency probes after the bulk phase.
			for i := 0; i < 32; i++ {
				p.Sleep(20 * sim.Microsecond)
				sent := p.Now()
				h0.SendMessage(p, &san.Message{
					Hdr:  san.Header{Dst: h1.ID(), Type: san.Data, Addr: 0x2000, Flow: 0x200},
					Size: 512,
				}, 0)
				comp := h0.RecvFlow(p, h1.ID(), 0x300)
				_ = comp
				latSum += p.Now() - sent
				latN++
			}
		})
		eng.Spawn("sink", func(p *sim.Proc) {
			defer wg.Done()
			var got int64
			for got < bulk {
				got += h1.RecvAny(p).Size
			}
			for i := 0; i < 32; i++ {
				h1.RecvFlow(p, h0.ID(), 0x200)
				h1.SendMessage(p, &san.Message{
					Hdr:  san.Header{Dst: h0.ID(), Type: san.Control, Flow: 0x300},
					Size: 16,
				}, 0)
			}
		})
		if active {
			// Background active stream: disk -> switch handler, looping
			// requests so the handler stays saturated the whole run.
			eng.Spawn("bg", func(p *sim.Proc) {
				h2.SendMessage(p, &san.Message{
					Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0},
					Size: 32,
				}, 0)
				tok := h2.IssueReadTo(p, c.Store(0).ID(), "bg", 0, streamLen,
					sw.ID(), 0x0010_0000, san.Data, 0, 0, 0x6100)
				h2.WaitRead(p, tok)
				done.Wait(p)
			})
		}
		eng.Spawn("main", func(p *sim.Proc) { wg.Wait(p) })
		eng.Run()
		c.Shutdown()
		return thr, latSum / sim.Time(latN)
	}

	var r InterferenceResult
	r.Baseline, r.BaselineLat = run(false)
	r.WithActive, r.WithActiveLat = run(true)
	return r
}

// ThroughputPoint is one configuration of a sweep.
type ThroughputPoint struct {
	X     int
	Bytes float64 // bytes/sec achieved
}

// forwardRun streams total bytes disk -> handler -> host1 with the given
// switch configuration and returns the achieved throughput.
func forwardRun(swCfg aswitch.Config, total int64, cycPerByte int64) float64 {
	eng := sim.NewEngine()
	ccfg := cluster.DefaultIOClusterConfig()
	ccfg.Hosts = 2
	ccfg.Switch = swCfg
	c := cluster.NewIOCluster(eng, ccfg)
	c.Store(0).AddFile(&iodev.File{Name: "f", Size: total})
	sw := c.Switch(0)
	done := sim.NewLatch()
	streamHandler(sw, 1, 0x0010_0000, total, cycPerByte, c.Host(1).ID(), 1, 1, done)
	c.Start()
	var elapsed sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		h := c.Host(0)
		h.SendMessage(p, &san.Message{
			Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "f", 0, total,
			sw.ID(), 0x0010_0000, san.Data, 0, 0, 0x6200)
		h.WaitRead(p, tok)
		done.Wait(p)
		elapsed = p.Now()
	})
	eng.Spawn("sink", func(p *sim.Proc) {
		var got int64
		for got < total {
			got += c.Host(1).RecvAny(p).Size
		}
	})
	eng.Run()
	c.Shutdown()
	return float64(total) / elapsed.Seconds()
}

// BufferCount sweeps the data-buffer pool size for a forwarding stream.
func BufferCount(counts []int) []ThroughputPoint {
	var out []ThroughputPoint
	for _, n := range counts {
		cfg := aswitch.DefaultConfig(8)
		cfg.NumBuffers = n
		out = append(out, ThroughputPoint{X: n, Bytes: forwardRun(cfg, 4<<20, 2)})
	}
	return out
}

// OutReserve sweeps the send-unit reservation for a send-heavy handler.
func OutReserve(reserves []int) []ThroughputPoint {
	var out []ThroughputPoint
	for _, n := range reserves {
		cfg := aswitch.DefaultConfig(8)
		cfg.OutReserve = n
		out = append(out, ThroughputPoint{X: n, Bytes: forwardRun(cfg, 4<<20, 2)})
	}
	return out
}

// CPUClock sweeps the switch processor frequency (MHz) for a compute-heavy
// filter (8 cycles/byte).
func CPUClock(mhz []int) []ThroughputPoint {
	var out []ThroughputPoint
	for _, f := range mhz {
		cfg := aswitch.DefaultConfig(8)
		cfg.CPUClock = sim.Clock{Period: sim.Time(1_000_000/f) * sim.Picosecond}
		out = append(out, ThroughputPoint{X: f, Bytes: forwardRun(cfg, 4<<20, 8)})
	}
	return out
}

// ValidBitGranularity returns one-message pipeline latency with fine
// (32-byte) and coarse (whole-packet) valid bits: the time from invocation
// until a handler has touched the head of every packet of a 64 KB message.
func ValidBitGranularity() (fine, coarse sim.Time) {
	run := func(lineBytes int64) sim.Time {
		eng := sim.NewEngine()
		ccfg := cluster.DefaultIOClusterConfig()
		ccfg.Switch.ValidLineBytes = lineBytes
		c := cluster.NewIOCluster(eng, ccfg)
		const total = 64 * 1024
		c.Store(0).AddFile(&iodev.File{Name: "f", Size: total})
		sw := c.Switch(0)
		var finished sim.Time
		sw.Register(1, "peek", func(x *aswitch.Ctx) {
			x.ReleaseArgs()
			cursor := int64(0x0010_0000)
			end := cursor + total
			for cursor < end {
				b := x.WaitStream(cursor)
				// Touch only the head of each packet: with per-line valid
				// bits this returns after 1 line; with whole-packet
				// validity it waits for the tail.
				x.Peek(b, 8)
				cursor = b.End()
				x.Deallocate(cursor)
			}
			finished = x.Now()
		})
		c.Start()
		eng.Spawn("app", func(p *sim.Proc) {
			h := c.Host(0)
			h.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0},
				Size: 32,
			}, 0)
			tok := h.IssueReadTo(p, c.Store(0).ID(), "f", 0, total,
				sw.ID(), 0x0010_0000, san.Data, 0, 0, 0x6300)
			h.WaitRead(p, tok)
		})
		eng.Run()
		c.Shutdown()
		return finished
	}
	return run(32), run(san.MTU)
}

// Report runs every ablation and renders a text summary.
func Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== ablation: design-choice studies ==\n")

	r := Interference()
	fmt.Fprintf(&b, "-- design goal 1: non-active traffic vs a saturated handler --\n")
	fmt.Fprintf(&b, "host-to-host throughput: %.1f MB/s idle, %.1f MB/s under active load (%.2f%% degradation)\n",
		r.Baseline/1e6, r.WithActive/1e6, 100*r.Degradation())
	fmt.Fprintf(&b, "small-message latency:   %v idle, %v under active load\n", r.BaselineLat, r.WithActiveLat)

	fmt.Fprintf(&b, "-- data-buffer pool size (forwarding stream) --\n")
	for _, pt := range BufferCount([]int{4, 8, 16, 32}) {
		fmt.Fprintf(&b, "buffers=%-3d  %.1f MB/s\n", pt.X, pt.Bytes/1e6)
	}

	fine, coarse := ValidBitGranularity()
	fmt.Fprintf(&b, "-- valid-bit granularity (head-of-packet pipeline) --\n")
	fmt.Fprintf(&b, "32-byte lines: %v   whole-packet: %v (fine bits win by %v)\n",
		fine, coarse, coarse-fine)

	fmt.Fprintf(&b, "-- send-unit reserve (send-heavy handler) --\n")
	for _, pt := range OutReserve([]int{1, 2, 4}) {
		fmt.Fprintf(&b, "reserve=%-3d  %.1f MB/s\n", pt.X, pt.Bytes/1e6)
	}

	fmt.Fprintf(&b, "-- active-case request size vs host utilization --\n")
	for _, pt := range RequestSize([]int64{64 * 1024, 256 * 1024, 1 << 20}) {
		fmt.Fprintf(&b, "request=%-5dKB host-util=%.4f\n", pt.X, pt.Bytes/1e6)
	}

	pl := FilterPlacement()
	fmt.Fprintf(&b, "-- filter placement across a two-switch fabric (25%% selective) --\n")
	fmt.Fprintf(&b, "trunk bytes: %d with the filter on the storage-side switch, %d host-side (%.1fx saved)\n",
		pl.StorageSide, pl.HostSide, float64(pl.HostSide)/float64(pl.StorageSide))

	tl := UtilTimeline()
	fmt.Fprintf(&b, "-- switch CPU utilization over time (6-cycle/byte forward) --\n")
	for i := 0; i < len(tl.X); i += 8 {
		fmt.Fprintf(&b, "t=%.1fms util=%.2f\n", tl.X[i]*1000, tl.Y[i])
	}

	fmt.Fprintf(&b, "-- switch CPU clock (8-cycle/byte filter) --\n")
	for _, pt := range CPUClock([]int{250, 500, 1000}) {
		fmt.Fprintf(&b, "clock=%-4dMHz %.1f MB/s\n", pt.X, pt.Bytes/1e6)
	}
	return b.String()
}

// UtilTimeline runs a compute-heavy forwarding stream and samples the
// switch CPU's cumulative utilization every 500 us — the time-resolved
// view behind the paper's average-utilization bars.
func UtilTimeline() stats.Series {
	eng := sim.NewEngine()
	ccfg := cluster.DefaultIOClusterConfig()
	ccfg.Hosts = 2
	c := cluster.NewIOCluster(eng, ccfg)
	const total = 4 << 20
	c.Store(0).AddFile(&iodev.File{Name: "f", Size: total})
	sw := c.Switch(0)
	done := sim.NewLatch()
	streamHandler(sw, 1, 0x0010_0000, total, 6, c.Host(1).ID(), 1, 1, done)
	c.Start()

	sampler := sim.StartSampler(eng, 500*sim.Microsecond, func() float64 {
		b := sw.CPU(0).Timing().Breakdown()
		now := eng.Now()
		if now == 0 {
			return 0
		}
		return float64(b.Busy+b.Stall) / float64(now)
	})
	eng.Spawn("app", func(p *sim.Proc) {
		h := c.Host(0)
		h.SendMessage(p, &san.Message{
			Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "f", 0, total,
			sw.ID(), 0x0010_0000, san.Data, 0, 0, 0x6700)
		h.WaitRead(p, tok)
		done.Wait(p)
		sampler.Stop()
	})
	eng.Spawn("sink", func(p *sim.Proc) {
		var got int64
		for got < total {
			got += c.Host(1).RecvAny(p).Size
		}
	})
	eng.Run()
	c.Shutdown()
	return stats.Series{Name: "switch-util(t)", X: sampler.X, Y: sampler.Y}
}

// PlacementResult compares filter placement across a two-switch fabric.
type PlacementResult struct {
	// TrunkBytes is the traffic crossing the inter-switch trunk when the
	// 25%-selective filter runs on the storage-side switch versus the
	// host-side switch.
	StorageSide, HostSide int64
}

// FilterPlacement quantifies the paper's placement argument: an active
// switch near the data filters before the fabric, one near the host does
// not. Both runs stream the same 4 MB table through a 25% filter; only the
// handler's switch differs.
func FilterPlacement() PlacementResult {
	run := func(onStorageSide bool) int64 {
		eng := sim.NewEngine()
		cfg := cluster.DefaultIOClusterConfig()
		c := cluster.NewDualIOCluster(eng, cfg)
		const total = 4 << 20
		c.Store(0).AddFile(&iodev.File{Name: "f", Size: total})
		swH, swS := c.Switch(0), c.Switch(1)
		target := swH
		if onStorageSide {
			target = swS
		}
		done := sim.NewLatch()
		// Keep 1 byte in 4 (25% selectivity), forwarding to the host.
		streamHandler(target, 1, 0x0010_0000, total, 2, c.Host(0).ID(), 1, 4, done)
		c.Start()

		// Measure the trunk (host-side switch's last port input link).
		trunk := swH.Port(swH.Config().Ports - 1).In

		eng.Spawn("app", func(p *sim.Proc) {
			h := c.Host(0)
			h.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: target.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0},
				Size: 32,
			}, 0)
			tok := h.IssueReadTo(p, c.Store(0).ID(), "f", 0, total,
				target.ID(), 0x0010_0000, san.Data, 0, 0, 0x6900)
			h.WaitRead(p, tok)
			done.Wait(p)
		})
		eng.Spawn("sink", func(p *sim.Proc) {
			var got int64
			for got < total/4 {
				got += c.Host(0).RecvAny(p).Size
			}
		})
		eng.Run()
		bytes := trunk.Stats().Bytes
		c.Shutdown()
		return bytes
	}
	return PlacementResult{StorageSide: run(true), HostSide: run(false)}
}

// RequestSize sweeps the active-case disk request size: the host pays
// 30 us per request, so large mapped requests are what push active host
// utilization toward the paper's "close to 0" while the switch's credits
// pace the stream regardless.
func RequestSize(sizes []int64) []ThroughputPoint {
	var out []ThroughputPoint
	for _, chunk := range sizes {
		eng := sim.NewEngine()
		ccfg := cluster.DefaultIOClusterConfig()
		c := cluster.NewIOCluster(eng, ccfg)
		const total = 8 << 20
		c.Store(0).AddFile(&iodev.File{Name: "f", Size: total})
		sw := c.Switch(0)
		done := sim.NewLatch()
		streamHandler(sw, 1, 0x0010_0000, total, 4, san.NoNode, 0, 0, done)
		c.Start()
		h := c.Host(0)
		eng.Spawn("app", func(p *sim.Proc) {
			h.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0},
				Size: 32,
			}, 0)
			var pending []*host.ReadToken
			next := int64(0)
			issue := func() {
				n := total - next
				if n <= 0 {
					return
				}
				if n > chunk {
					n = chunk
				}
				pending = append(pending, h.IssueReadTo(p, c.Store(0).ID(), "f", next, n,
					sw.ID(), 0x0010_0000+next, san.Data, 0, 0, 0x6A00))
				next += n
			}
			issue()
			issue()
			for len(pending) > 0 {
				h.WaitRead(p, pending[0])
				pending = pending[1:]
				issue()
			}
			done.Wait(p)
		})
		end := eng.Run()
		b := h.CPU().Breakdown()
		util := float64(b.Busy+b.Stall) / float64(end)
		c.Shutdown()
		// X carries the request size in KB; Bytes carries host utilization
		// scaled by 1e6 so the ThroughputPoint shape is reusable.
		out = append(out, ThroughputPoint{X: int(chunk / 1024), Bytes: util * 1e6})
	}
	return out
}
