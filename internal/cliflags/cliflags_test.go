package cliflags

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"activesan/internal/apps"
	"activesan/internal/apps/mpeg"
	"activesan/internal/cluster"
	"activesan/internal/fault"
	"activesan/internal/hdl"
	"activesan/internal/sim"
	"activesan/internal/telemetry"
)

func TestSetupRejectsSeedWithoutPlan(t *testing.T) {
	c := &Common{FaultSeed: 42}
	cleanup, err := c.Setup()
	if err == nil || !strings.Contains(err.Error(), "-faults") {
		t.Fatalf("err = %v, want a -fault-seed/-faults complaint", err)
	}
	cleanup()
}

func TestSetupLoadsFaultPlan(t *testing.T) {
	defer fault.SetDefault(nil, 0)
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(path, []byte(`{"seed": 3, "links": [{"drop": 0.01}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c := &Common{Faults: path, FaultSeed: 9}
	cleanup, err := c.Setup()
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	defer cleanup()
	plan, seed := fault.Default()
	if plan == nil || plan.Seed != 3 || seed != 9 {
		t.Fatalf("default plan = %+v seed %d, want seed 3 with override 9", plan, seed)
	}
}

func TestSetupRejectsInvalidPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"links": [{"drop": 1.5}]}`), 0o644)
	c := &Common{Faults: path}
	cleanup, err := c.Setup()
	if err == nil || !strings.Contains(err.Error(), "drop=1.5") {
		t.Fatalf("err = %v, want the out-of-range probability named", err)
	}
	cleanup()

	c = &Common{Faults: filepath.Join(dir, "absent.json")}
	cleanup, err = c.Setup()
	if err == nil {
		t.Fatal("missing plan file accepted")
	}
	cleanup()
}

func TestSetupInstallsTopologyDefault(t *testing.T) {
	defer cluster.SetDefaultTopology("tree", 0)
	cases := []struct {
		flag string
		kind string
		k    int
	}{
		{"", "tree", 0},
		{"tree", "tree", 0},
		{"fattree", "fattree", 0},
		{"fattree:8", "fattree", 8},
	}
	for _, tc := range cases {
		c := &Common{Topology: tc.flag}
		cleanup, err := c.Setup()
		if err != nil {
			t.Fatalf("Setup(-topology=%q): %v", tc.flag, err)
		}
		cleanup()
		kind, k := cluster.DefaultTopology()
		if kind != tc.kind || k != tc.k {
			t.Errorf("-topology=%q installed (%q, %d), want (%q, %d)", tc.flag, kind, k, tc.kind, tc.k)
		}
	}
}

func TestSetupRejectsBadTopology(t *testing.T) {
	defer cluster.SetDefaultTopology("tree", 0)
	for _, v := range []string{"mesh", "fattree:7", "fattree:0", "fattree:x"} {
		c := &Common{Topology: v}
		cleanup, err := c.Setup()
		cleanup()
		if err == nil || !strings.Contains(err.Error(), "-topology") {
			t.Errorf("-topology=%q: err = %v, want a -topology complaint", v, err)
		}
	}
}

func TestSetupCompilesHandlerSrc(t *testing.T) {
	defer hdl.SetExtra(nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "fold.hdl")
	src := "handler fold {\n\tvar acc\n\ton word x {\n\t\tacc = acc ^ x\n\t}\n\tend {\n\t\temit acc\n\t}\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c := &Common{HandlerSrc: path}
	cleanup, err := c.Setup()
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	defer cleanup()
	x := hdl.Extra()
	if x == nil || x.AST.Name != "fold" {
		t.Fatalf("Extra() = %v, want the compiled fold handler installed", x)
	}
}

func TestSetupRejectsBadHandlerSrc(t *testing.T) {
	defer hdl.SetExtra(nil)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.hdl")
	os.WriteFile(bad, []byte("handler broken {\n\ton word x { y = 1 }\n}\n"), 0o644)
	for _, path := range []string{bad, filepath.Join(dir, "absent.hdl")} {
		c := &Common{HandlerSrc: path}
		cleanup, err := c.Setup()
		cleanup()
		if err == nil || !strings.HasPrefix(err.Error(), "-handler-src:") {
			t.Errorf("HandlerSrc=%q: err = %v, want a -handler-src-prefixed error", path, err)
		}
	}
	if hdl.Extra() != nil {
		t.Error("a rejected handler source still installed an extra handler")
	}
}

func TestEnsureParent(t *testing.T) {
	dir := t.TempDir()
	nested := filepath.Join(dir, "a", "b", "out.json")
	if err := EnsureParent(nested); err != nil {
		t.Fatalf("EnsureParent: %v", err)
	}
	if st, err := os.Stat(filepath.Dir(nested)); err != nil || !st.IsDir() {
		t.Fatalf("parent not created: %v", err)
	}
	// A bare filename needs no directory and must not error.
	if err := EnsureParent("out.json"); err != nil {
		t.Fatalf("EnsureParent on bare name: %v", err)
	}
}

func TestCleanupFlushesOnCrash(t *testing.T) {
	// The satellite regression: a fault plan that crashes mid-run (here a
	// handler crash, followed by a strict-routes-style panic out of the
	// simulation body) must still leave a complete -trace-out document and a
	// flight-recorder dump on disk — never a truncated fragment.
	defer func() {
		sim.SetDefaultTraceSink(nil)
		telemetry.SetDefault(false)
		telemetry.SetDefaultSpanWriter(nil)
		fault.SetDefault(nil, 0)
	}()
	dir := t.TempDir()
	planPath := filepath.Join(dir, "crash.json")
	plan := `{"events": [{"at_ns": 50000, "kind": "handler_crash", "switch": 0}]}`
	if err := os.WriteFile(planPath, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	c := &Common{
		TraceOut:   filepath.Join(dir, "trace.json"),
		TraceLimit: 100000,
		Faults:     planPath,
		Telemetry:  true,
		FlightRec:  filepath.Join(dir, "flight.txt"),
	}
	cleanup, err := c.Setup()
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if c.FR == nil {
		t.Fatal("Setup left FR nil with -flight-recorder set")
	}

	prm := mpeg.DefaultParams()
	prm.FileSize = 256 * 1024
	dp, seed := fault.Default()
	code := c.RunProtected(func() int {
		run, _ := mpeg.RunFaulted(apps.Active, prm, dp, seed)
		if run.Extra["fallback"] != true {
			t.Errorf("crash plan did not force the fallback: Extra=%v", run.Extra)
		}
		panic("no route for packet dst=7 (-strict-routes)")
	})
	cleanup() // main defers this; a panic in the body must not skip it
	if code != 1 {
		t.Fatalf("RunProtected = %d after a panic, want 1", code)
	}

	// Flight dump written, holding both the fault event and the panic trigger.
	dump, err := os.ReadFile(c.FlightRec)
	if err != nil {
		t.Fatalf("no flight-recorder dump: %v", err)
	}
	for _, want := range []string{"handler_crash", "panic: no route"} {
		if !strings.Contains(string(dump), want) {
			t.Errorf("dump lacks %q:\n%s", want, dump)
		}
	}

	// The trace file is a complete, loadable JSON document with events.
	raw, err := os.ReadFile(c.TraceOut)
	if err != nil {
		t.Fatalf("no trace file: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("crashed run left a truncated trace: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace document holds no events")
	}
}

func TestSetupMetricsOutCreatesParent(t *testing.T) {
	dir := t.TempDir()
	c := &Common{MetricsOut: filepath.Join(dir, "sub", "metrics.json")}
	cleanup, err := c.Setup()
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	defer cleanup()
	if st, err := os.Stat(filepath.Join(dir, "sub")); err != nil || !st.IsDir() {
		t.Fatalf("metrics parent not created: %v", err)
	}
}
