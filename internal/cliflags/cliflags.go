// Package cliflags is the flag wiring shared by cmd/activesim and
// cmd/sansweep: output paths (metrics, traces, pprof profiles), the
// fault-injection plan, the collective topology selector, the
// -handler-src HDL handler loader, and the telemetry/flight-recorder
// switches. Both commands declare the same flags with the same
// semantics; this package keeps them from drifting and gives their values
// one validated Setup path with helpful errors instead of two copies of the
// boilerplate.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"activesan/internal/cluster"
	"activesan/internal/collective"
	"activesan/internal/fault"
	"activesan/internal/hdl"
	"activesan/internal/metrics"
	"activesan/internal/prof"
	"activesan/internal/sim"
	"activesan/internal/telemetry"
)

// Common holds the flag values shared by the commands.
type Common struct {
	TraceOut   string
	TraceLimit int
	MetricsOut string
	CPUProfile string
	MemProfile string
	Faults     string
	FaultSeed  uint64
	Topology   string
	Partitions int
	Collective string
	AggBudget  int
	HandlerSrc string
	Telemetry  bool
	FlightRec  string

	// FR is the armed flight recorder (nil unless -flight-recorder was
	// given). RunProtected feeds recovered panics into it; cleanup writes
	// its dump when it triggered.
	FR *telemetry.FlightRecorder
}

// Register declares the shared flags on the default flag set. Call before
// flag.Parse.
func Register() *Common {
	c := &Common{}
	flag.StringVar(&c.TraceOut, "trace-out", "",
		"write a Chrome trace-event / Perfetto JSON trace to this file")
	flag.IntVar(&c.TraceLimit, "tracelimit", 200000, "maximum trace lines/events")
	flag.StringVar(&c.MetricsOut, "metrics-out", "",
		"write secondary-metric snapshots as JSON to this file")
	flag.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	flag.StringVar(&c.Faults, "faults", "",
		"arm the fault plan in this JSON file on every simulated cluster (see RELIABILITY.md)")
	flag.Uint64Var(&c.FaultSeed, "fault-seed", 0, "override the fault plan's PRNG seed (requires -faults)")
	flag.StringVar(&c.Topology, "topology", "tree",
		"collective topology: tree (the paper's reduction tree), fattree, or fattree:K (see TOPOLOGIES.md)")
	flag.IntVar(&c.Partitions, "partitions", 1,
		"simulation partitions per cluster: 1 = serial engine, 0 = auto from topology size, N = exactly N; results are byte-identical at any value (see PERFORMANCE.md)")
	flag.StringVar(&c.Collective, "collective", "allreduce",
		"collective op for the collsweep experiment and -sweep collective: allreduce, barrier, scatter, gather, or keyagg (see COLLECTIVES.md)")
	flag.IntVar(&c.AggBudget, "agg-budget", 0,
		"per-switch key-table budget (entries) for keyagg collectives; 0 = the library default, smaller budgets spill to the host (see COLLECTIVES.md)")
	flag.StringVar(&c.HandlerSrc, "handler-src", "",
		"compile this HDL handler source file and add it to the hdlsweep experiment (see HANDLERS.md)")
	flag.BoolVar(&c.Telemetry, "telemetry", false,
		"stamp every packet with per-hop telemetry and fold latency histograms into metrics (see OBSERVABILITY.md)")
	flag.StringVar(&c.FlightRec, "flight-recorder", "",
		"keep a per-component ring of recent trace events; dump to this file on a crash or -strict-routes violation")
	return c
}

// parseTopology validates a -topology value, returning the kind and the
// fat-tree arity override (0 = pick the smallest fit).
func parseTopology(v string) (kind string, k int, err error) {
	switch {
	case v == "" || v == "tree":
		return "tree", 0, nil
	case v == "fattree":
		return "fattree", 0, nil
	case strings.HasPrefix(v, "fattree:"):
		k, err := strconv.Atoi(v[len("fattree:"):])
		if err != nil || k < 2 || k%2 != 0 {
			return "", 0, fmt.Errorf("fattree arity %q must be an even integer >= 2", v[len("fattree:"):])
		}
		return "fattree", k, nil
	default:
		return "", 0, fmt.Errorf("unknown topology %q (want tree, fattree, or fattree:K)", v)
	}
}

// Setup validates the parsed values and installs their process-wide effects:
// the default fault plan, profiling, telemetry, the flight recorder, and the
// Chrome trace sink. The returned cleanup (never nil) flushes the trace
// file, writes the flight-recorder dump if it triggered, and stops the
// profilers; defer it from main. RunProtected runs cleanup even when the
// simulation panics, so -trace-out/-metrics-out are never left truncated.
// Errors name the flag at fault.
func (c *Common) Setup() (cleanup func(), err error) {
	noop := func() {}
	if c.FaultSeed != 0 && c.Faults == "" {
		return noop, fmt.Errorf("-fault-seed has no effect without -faults")
	}
	kind, k, err := parseTopology(c.Topology)
	if err != nil {
		return noop, fmt.Errorf("-topology: %w", err)
	}
	cluster.SetDefaultTopology(kind, k)
	if c.Partitions < 0 {
		return noop, fmt.Errorf("-partitions: count %d must be >= 0 (0 = auto)", c.Partitions)
	}
	cluster.SetDefaultPartitions(c.Partitions)
	op, err := collective.ParseOp(c.Collective)
	if err != nil {
		return noop, fmt.Errorf("-collective: %w", err)
	}
	collective.SetDefaultOp(op)
	if c.AggBudget < 0 {
		return noop, fmt.Errorf("-agg-budget: %d must be >= 0 (0 = default)", c.AggBudget)
	}
	if c.AggBudget > 0 {
		collective.SetDefaultBudget(c.AggBudget)
	}
	if c.Faults != "" {
		plan, err := fault.Load(c.Faults)
		if err != nil {
			return noop, fmt.Errorf("-faults: %w", err)
		}
		fault.SetDefault(plan, c.FaultSeed)
	}
	if c.HandlerSrc != "" {
		src, err := os.ReadFile(c.HandlerSrc)
		if err != nil {
			return noop, fmt.Errorf("-handler-src: %w", err)
		}
		compiled, err := hdl.Compile(string(src))
		if err != nil {
			return noop, fmt.Errorf("-handler-src: %w", err)
		}
		hdl.SetExtra(compiled)
	}
	if c.MetricsOut != "" {
		// Fail on an unwritable directory now, not after the simulation.
		if err := EnsureParent(c.MetricsOut); err != nil {
			return noop, fmt.Errorf("-metrics-out: %w", err)
		}
	}
	telemetry.SetDefault(c.Telemetry)
	if c.FlightRec != "" {
		if err := EnsureParent(c.FlightRec); err != nil {
			return noop, fmt.Errorf("-flight-recorder: %w", err)
		}
		c.FR = telemetry.NewFlightRecorder(0)
	}
	stopProf := prof.Start(c.CPUProfile, c.MemProfile)

	var w *metrics.ChromeTraceWriter
	if c.TraceOut != "" {
		if err := EnsureParent(c.TraceOut); err != nil {
			stopProf()
			return noop, fmt.Errorf("-trace-out: %w", err)
		}
		f, err := os.Create(c.TraceOut)
		if err != nil {
			stopProf()
			return noop, fmt.Errorf("-trace-out: %w", err)
		}
		// The writer locks internally, so -parallel engines share it.
		w = metrics.NewChromeTraceWriter(f, int64(c.TraceLimit))
		if c.Telemetry {
			// Per-hop spans ride the same Perfetto file as the event trace.
			telemetry.SetDefaultSpanWriter(w)
		}
	}

	// Install the trace sink: the flight recorder tees in front of the
	// Chrome writer (or records alone when there is no -trace-out).
	switch {
	case c.FR != nil && w != nil:
		sim.SetDefaultTraceSink(c.FR.Sink(w.Sink()))
	case c.FR != nil:
		sim.SetDefaultTraceSink(c.FR.Sink(nil))
	case w != nil:
		sim.SetDefaultTraceSink(w.Sink())
	}

	out, frOut, fr := c.TraceOut, c.FlightRec, c.FR
	return func() {
		if fr != nil && fr.Triggered() {
			if err := os.WriteFile(frOut, []byte(fr.Dump()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote flight-recorder dump to %s\n", frOut)
			}
		}
		if w != nil {
			if err := w.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Printf("wrote %s (%d events)\n", out, w.Events())
			}
		}
		stopProf()
	}, nil
}

// RunProtected executes body, converting a panic — a fault-plan crash
// surfacing under -strict-routes, an invariant failure — into exit code 1
// after arming the flight recorder with the panic message. The caller's
// deferred cleanup then still runs (trace close, flight dump, metrics
// write), so output files are complete even on a crashed run.
func (c *Common) RunProtected(body func() int) (code int) {
	defer func() {
		if r := recover(); r != nil {
			if c.FR != nil {
				c.FR.Trigger(fmt.Sprintf("panic: %v", r))
			}
			fmt.Fprintf(os.Stderr, "crash: %v\n", r)
			code = 1
		}
	}()
	return body()
}

// EnsureParent creates the directory a file path will be written into.
func EnsureParent(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		return os.MkdirAll(dir, 0o755)
	}
	return nil
}
