package activesan_test

import (
	"fmt"

	"activesan"
)

// Example builds the smallest active-switch system: one host, one disk,
// one switch running a byte-counting handler.
func Example() {
	eng := activesan.NewEngine()
	c := activesan.NewIOCluster(eng, activesan.DefaultIOClusterConfig())
	c.Store(0).AddFile(&activesan.File{Name: "data", Size: 64 * 1024})

	sw := c.Switch(0)
	sw.Register(1, "bytecount", func(x *activesan.HandlerCtx) {
		x.ReleaseArgs()
		var counted int64
		cursor := int64(0x100000)
		for counted < 64*1024 {
			b := x.WaitStream(cursor)
			x.ReadAll(b)
			counted += b.Size()
			cursor = b.End()
			x.Deallocate(cursor)
		}
		x.Send(activesan.SendSpec{
			Dst: x.Src(), Type: activesan.ControlPacket,
			Addr: 0x100, Size: 8, Flow: 42, Payload: counted,
		})
	})
	c.Start()

	eng.Spawn("app", func(p *activesan.Proc) {
		h := c.Host(0)
		h.SendMessage(p, &activesan.Message{
			Hdr:  activesan.Header{Dst: sw.ID(), Type: activesan.ActiveMsgPacket, HandlerID: 1},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "data", 0, 64*1024,
			sw.ID(), 0x100000, activesan.DataPacket, 0, 0, 7)
		h.WaitRead(p, tok)
		comp := h.RecvFlow(p, sw.ID(), 42)
		fmt.Printf("switch counted %d bytes; host saw %d bytes of data\n",
			comp.Payloads[0].(int64), h.Traffic()-8-64-32)
	})
	eng.Run()
	c.Shutdown()
	// Output: switch counted 65536 bytes; host saw 0 bytes of data
}

// ExampleRunExperiment regenerates one of the paper's artifacts.
func ExampleRunExperiment() {
	res, err := activesan.RunExperiment("table2", 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ID, "notes:", len(res.Notes))
	// Output: table2 notes: 3
}

// ExampleAssemble runs a handler written in switch assembly outside any
// simulation via the toolchain in cmd/swasm; inside a handler, use
// RunProgram instead.
func ExampleAssemble() {
	prog, err := activesan.Assemble(`
		li   r1, 6
		li   r2, 7
		mul  r3, r1, r2
		emit r3
		stop
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println("instructions:", len(prog.Instrs))
	// Output: instructions: 5
}
