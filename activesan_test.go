package activesan_test

import (
	"strings"
	"testing"

	"activesan"
)

func TestExperimentsListComplete(t *testing.T) {
	exps := activesan.Experiments()
	if len(exps) != 17 {
		t.Fatalf("experiments = %d, want 17 (2 tables + 9 figure entries + 6 extensions)", len(exps))
	}
	for _, e := range exps {
		if e.ID == "" || e.Paper == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment entry: %+v", e)
		}
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	if _, err := activesan.RunExperiment("fig42", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	} else if !strings.Contains(err.Error(), "fig42") {
		t.Fatalf("error does not name the id: %v", err)
	}
}

func TestRunExperimentTable2(t *testing.T) {
	res, err := activesan.RunExperiment("table2", 1)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Notes, "\n")
	if !strings.Contains(joined, "correct=true") {
		t.Fatalf("table2 did not verify:\n%s", joined)
	}
	if strings.Contains(joined, "correct=false") {
		t.Fatalf("table2 recorded an incorrect reduction:\n%s", joined)
	}
}

func TestPublicAPIBuildsACluster(t *testing.T) {
	// The facade must be sufficient to build and drive a system — the same
	// flow as examples/quickstart, asserted.
	eng := activesan.NewEngine()
	c := activesan.NewIOCluster(eng, activesan.DefaultIOClusterConfig())
	const size = 128 * 1024
	c.Store(0).AddFile(&activesan.File{Name: "data", Size: size})
	sw := c.Switch(0)
	var counted int64
	sw.Register(1, "count", func(x *activesan.HandlerCtx) {
		x.ReleaseArgs()
		cursor := int64(0x100000)
		for counted < size {
			b := x.WaitStream(cursor)
			x.ReadAll(b)
			counted += b.Size()
			cursor = b.End()
			x.Deallocate(cursor)
		}
		x.Send(activesan.SendSpec{Dst: x.Src(), Type: activesan.DataPacket,
			Addr: 0x100, Size: 8, Flow: 42})
	})
	c.Start()
	finished := false
	eng.Spawn("app", func(p *activesan.Proc) {
		h := c.Host(0)
		h.SendMessage(p, &activesan.Message{
			Hdr:  activesan.Header{Dst: sw.ID(), Type: activesan.ActiveMsgPacket, HandlerID: 1},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "data", 0, size,
			sw.ID(), 0x100000, activesan.DataPacket, 0, 0, 7)
		h.WaitRead(p, tok)
		h.RecvFlow(p, sw.ID(), 42)
		finished = true
	})
	eng.Run()
	defer c.Shutdown()
	if !finished || counted != size {
		t.Fatalf("finished=%v counted=%d", finished, counted)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Two identical runs of a full benchmark must agree to the picosecond
	// — the engine is deterministic by construction, and any map-iteration
	// order leaking into timing would break this.
	run := func() (activesan.Time, int64) {
		res, err := activesan.RunExperiment("fig9", 1)
		if err != nil {
			t.Fatal(err)
		}
		r, _ := res.Run("active+pref")
		return r.Time, r.Traffic
	}
	t1, tr1 := run()
	t2, tr2 := run()
	if t1 != t2 || tr1 != tr2 {
		t.Fatalf("replay diverged: %v/%d vs %v/%d", t1, tr1, t2, tr2)
	}
}

func TestShapesFacade(t *testing.T) {
	res, err := activesan.RunExperiment("fig9", 1)
	if err != nil {
		t.Fatal(err)
	}
	shapes := activesan.Shapes(res)
	if len(shapes) == 0 {
		t.Fatal("no shapes for fig9")
	}
}

func TestRenderingFacades(t *testing.T) {
	res, err := activesan.RunExperiment("table2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ascii := activesan.RenderASCII(res); !strings.Contains(ascii, "table2") {
		t.Fatal("ASCII rendering lost the result id")
	}
	svg := activesan.RenderSVG(res)
	if !strings.Contains(string(svg), "<svg") {
		t.Fatal("SVG rendering is not SVG")
	}
	md := activesan.MarkdownReport("t", 1, []*activesan.Result{res})
	if !strings.Contains(md, "## table2") {
		t.Fatal("markdown report lost the result")
	}
	js, err := activesan.ResultJSON([]*activesan.Result{res})
	if err != nil || !strings.Contains(string(js), "table2") {
		t.Fatalf("JSON export failed: %v", err)
	}
}
